"""Pipeline fuzzing: run WOLF over a stream of random programs and
cross-check every verdict against systematic schedule search.

This is the repository's continuous-soundness harness (``wolf fuzz``):

* a cycle the **Pruner** or **Generator** calls false must never deadlock
  at its sites in bounded-exhaustive exploration (soundness of the
  elimination stages);
* a cycle the **Replayer** confirms must obviously be reachable (it was
  reached!) — counted as a consistency sanity check;
* cycles left *unknown* are tallied, with how many of them exploration
  could in fact reach (the replay-miss rate on ground-truth-reachable
  deadlocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set

from repro.core.detector import ExtendedDetector
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.core.replayer import Replayer
from repro.runtime.sim.explore import explore_deadlocks
from repro.util.fmt import render_table
from repro.workloads.randomgen import build_program, random_spec


@dataclass
class FuzzStats:
    programs: int = 0
    cycles: int = 0
    pruned: int = 0
    generator_false: int = 0
    confirmed: int = 0
    unknown: int = 0
    #: unknown cycles whose sites exploration *did* reach (replay misses)
    unknown_but_reachable: int = 0
    #: soundness violations: eliminated cycles that exploration reached
    violations: List[str] = field(default_factory=list)

    def summary(self) -> str:
        rows = [
            ["programs fuzzed", self.programs],
            ["cycles detected", self.cycles],
            ["pruned (false)", self.pruned],
            ["generator false", self.generator_false],
            ["confirmed by replay", self.confirmed],
            ["unknown", self.unknown],
            ["unknown but reachable", self.unknown_but_reachable],
            ["SOUNDNESS VIOLATIONS", len(self.violations)],
        ]
        return render_table(["metric", "value"], rows, title="fuzzing summary")


def fuzz_once(
    seed: int,
    stats: FuzzStats,
    *,
    replay_attempts: int = 3,
    explore_runs: int = 600,
    preemption_bound: Optional[int] = 2,
) -> None:
    """Fuzz one random program and fold results into ``stats``."""
    spec = random_spec(seed)
    program = build_program(spec)
    stats.programs += 1

    run = run_detection(program, seed, tries=5, max_steps=50_000)
    detection = ExtendedDetector(max_length=3).analyze(run.trace)
    if not detection.cycles:
        return
    stats.cycles += len(detection.cycles)

    prune = Pruner(detection.vclocks).prune(detection.cycles)
    gen = Generator(detection.relation).run(prune.survivors)
    replayer = Replayer(program, seed=seed, max_steps=50_000)

    eliminated: Set[FrozenSet[str]] = set()
    feasible: Set[FrozenSet[str]] = set()
    unknown_sites: List[FrozenSet[str]] = []

    stats.pruned += len(prune.false_positives)
    for c in prune.false_positives:
        eliminated.add(c.sites)
    for dec in gen.decisions:
        if dec.verdict is GeneratorVerdict.FALSE:
            stats.generator_false += 1
            eliminated.add(dec.cycle.sites)
        else:
            feasible.add(dec.cycle.sites)
            outcome = replayer.replay(dec, attempts=replay_attempts)
            if outcome.reproduced:
                stats.confirmed += 1
            else:
                stats.unknown += 1
                unknown_sites.append(dec.cycle.sites)

    # A site set is only provably-impossible if no feasible cycle shares it.
    eliminated -= feasible
    if not eliminated and not unknown_sites:
        return

    witnesses, _ = explore_deadlocks(
        program,
        max_runs=explore_runs,
        preemption_bound=preemption_bound,
        max_steps=50_000,
    )
    reached = set(witnesses)
    for sites in eliminated & reached:
        stats.violations.append(
            f"seed {seed}: eliminated cycle at {sorted(sites)} was reached "
            f"by exploration — {spec.describe()}"
        )
    for sites in unknown_sites:
        if sites in reached:
            stats.unknown_but_reachable += 1


def run_fuzz(
    *,
    n_programs: int = 50,
    base_seed: int = 0,
    replay_attempts: int = 3,
    explore_runs: int = 600,
    preemption_bound: Optional[int] = 2,
) -> FuzzStats:
    stats = FuzzStats()
    for k in range(n_programs):
        fuzz_once(
            base_seed + k,
            stats,
            replay_attempts=replay_attempts,
            explore_runs=explore_runs,
            preemption_bound=preemption_bound,
        )
    return stats
