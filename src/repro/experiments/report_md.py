"""Generate EXPERIMENTS.md: paper values vs this reproduction's measured
values for every table and figure.

``wolf reproduce --out EXPERIMENTS.md`` runs all four drivers and writes
the comparison document.  The paper's numbers are hard-coded from the
published tables; ours come from the drivers.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.prediction import PredictionVerdict
from repro.core.report import WolfReport
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig10 import run_fig10
from repro.experiments.runner import (
    ExperimentSettings,
    run_wolf,
    select_benchmarks,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

#: Paper Table 1 (per defect): detected, FP, TP WOLF, TP DF, Unk WOLF, Unk DF.
PAPER_TABLE1 = {
    "cache4j": (0, 0, 0, 0, 0, 0),
    "Jigsaw": (30, 7, 6, 3, 17, 27),
    "JavaLogging": (2, 0, 2, 1, 0, 1),
    "ArrayList": (6, 0, 6, 3, 0, 3),
    "Stack": (6, 0, 6, 3, 0, 3),
    "LinkedList": (6, 0, 6, 3, 0, 3),
    "HashMap": (3, 1, 2, 2, 0, 1),
    "TreeMap": (3, 1, 2, 2, 0, 1),
    "WeakHashMap": (3, 1, 2, 2, 0, 1),
    "LinkedHashMap": (3, 1, 2, 2, 0, 1),
    "IdentityHashMap": (3, 1, 2, 2, 0, 1),
}

#: Paper Table 2 (per cycle): cycles, FP WOLF, TP WOLF, TP DF.
PAPER_TABLE2 = {
    "Jigsaw": (265, 83, 97, 35),
    "JavaLogging": (2, 0, 2, 1),
    "ArrayList": (9, 0, 9, 3),
    "Stack": (9, 0, 9, 3),
    "LinkedList": (9, 0, 9, 3),
    "HashMap": (4, 1, 3, 3),
    "TreeMap": (4, 1, 3, 3),
    "WeakHashMap": (4, 1, 3, 3),
    "LinkedHashMap": (4, 1, 3, 3),
    "IdentityHashMap": (4, 1, 3, 3),
}

#: Approximate WOLF/DF hit rates read off the paper's Figure 8 bars.
PAPER_FIG8 = {
    "Jigsaw": (0.45, 0.15),
    "JavaLogging": (1.0, 0.5),
    "ArrayList": (0.95, 0.35),
    "Stack": (0.95, 0.35),
    "LinkedList": (0.95, 0.35),
    "HashMap": (0.9, 0.6),
    "TreeMap": (0.9, 0.65),
    "WeakHashMap": (0.9, 0.65),
    "LinkedHashMap": (0.9, 0.6),
    "IdentityHashMap": (0.9, 0.6),
}


def _fmt(x: float) -> str:
    if x != x:  # NaN
        return "n/a"
    return f"{x:.2f}"


def total_forced_releases(report: WolfReport) -> int:
    """Times the replay scheduler hit Algorithm 4's force-release safety
    valve, summed over every replayed cycle (0 = fully faithful replays)."""
    return sum(
        cr.replay.forced_releases for cr in report.cycle_reports if cr.replay
    )


def _fmt_predictions(rep: WolfReport) -> str:
    """``cert/ref/und`` verdict counts, or ``off`` when the prediction
    pass did not run for this report."""
    if rep.predict == "off":
        return "off"
    return (
        f"{rep.count_predictions(PredictionVerdict.CERTIFIED)}"
        f"/{rep.count_predictions(PredictionVerdict.REFUTED)}"
        f"/{rep.count_predictions(PredictionVerdict.UNDECIDED)}"
    )


def render_health_section(reports: Sequence[WolfReport]) -> List[str]:
    """Markdown lines for the run-health table: supervision faults,
    engine degradation, replay force-releases and prediction verdicts
    per benchmark — so a degraded or faulty run is visible in the
    report, not just in the Python objects."""
    out = [
        "## Run health — supervision, degradation, replay fidelity",
        "",
        "| Benchmark | Workers | Faults (error/timeout/crashed) | "
        "Forced releases | Reduced tuples | Predicted (cert/ref/und) | "
        "Degradation |",
        "|---|---|---|---|---|---|---|",
    ]
    for rep in reports:
        faults = (
            f"{rep.count_faults('error')}/{rep.count_faults('timeout')}"
            f"/{rep.count_faults('crashed')}"
        )
        out.append(
            f"| {rep.program} | {rep.workers} | {faults} "
            f"| {total_forced_releases(rep)} "
            f"| {rep.reduced_tuples} "
            f"| {_fmt_predictions(rep)} "
            f"| {rep.fallback_reason or 'none'} |"
        )
    total_faults = sum(rep.n_faults for rep in reports)
    out.append("")
    out.append(
        f"{total_faults} task(s) lost to faults across all benchmarks; "
        "a faulted seed or cycle is recorded above and excluded from the "
        "counts, never silently dropped."
        if total_faults
        else "No supervised task faulted; every seed and cycle above is "
        "backed by a completed execution."
    )
    demoted = sum(rep.n_demoted_certificates for rep in reports)
    disagreements = sum(rep.prediction_disagreements for rep in reports)
    if any(rep.predict != "off" for rep in reports):
        out.append("")
        out.append(
            f"Prediction soundness: {disagreements} disagreement(s) "
            f"(certified-but-missed or refuted-but-reproduced), "
            f"{demoted} certificate(s) demoted by witness divergence."
        )
    out.append("")
    return out


def render_crossval_section(
    names: Optional[Sequence[str]] = None,
) -> List[str]:
    """Markdown lines for the static-vs-dynamic cross-validation matrix
    (the ``wolf analyze`` verdicts, embedded in EXPERIMENTS.md)."""
    from repro.analysis import run_crossval

    rep = run_crossval(names, sanitize=True)
    g = rep.graph
    out = [
        "## Cross-validation — static lock-order analysis vs dynamic detection",
        "",
        f"Static pass: {rep.corpus_files} workload files analyzed AST-only "
        f"({len(g.tokens)} lock tokens, {len(g.edges)} order edges, "
        f"{len(rep.all_cycles)} candidate cycles).",
        "",
        "| Benchmark | Dynamic defects | Static candidates | Confirmed "
        "by both | Dynamic-only | Static-only | Sanitizer |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rep.benchmarks:
        out.append(
            f"| {row.name} | {len(row.dynamic_keys)} "
            f"| {len(row.static_cycles)} | {len(row.confirmed)} "
            f"| {len(row.dynamic_only)} | {len(row.static_only)} "
            f"| {len(row.diagnostics)} |"
        )
    out.append("")
    out.append(
        f"{rep.n_confirmed} dynamic defect(s) are confirmed by an "
        "independent static witness; static-only rows quantify the recall "
        "bound of single-schedule dynamic detection, dynamic-only rows the "
        "aliasing conservatism of the static abstraction. "
        f"{rep.n_diagnostics} sanitizer diagnostic(s)."
    )
    out.append("")
    return out


def generate_markdown(
    names: Optional[Sequence[str]] = None,
    settings: Optional[ExperimentSettings] = None,
    *,
    fig8_runs: int = 30,
) -> str:
    settings = settings or ExperimentSettings(replay_attempts=8)
    t0 = time.time()
    out: List[str] = []
    out.append("# EXPERIMENTS — paper vs. this reproduction")
    out.append("")
    out.append(
        "Generated by `wolf reproduce`. Absolute counts differ where our "
        "workload models are smaller than the Java originals (see "
        "DESIGN.md §2); the claims being reproduced are the *shapes*: "
        "which cycles each stage eliminates, who reproduces more, and "
        "where the overheads sit."
    )
    out.append("")

    # ---- Table 1 -------------------------------------------------------
    rows1 = run_table1(names, settings, measure_slowdown=True)
    out.append("## Table 1 — defects by unique source locations")
    out.append("")
    out.append(
        "| Benchmark | Detected (paper/ours) | FP (paper/ours) | TP WOLF "
        "(paper/ours) | TP DF (paper/ours) | Unk WOLF (paper/ours) | "
        "Slowdown (ours) | SL (ours) | avg Vs (ours) |"
    )
    out.append("|---|---|---|---|---|---|---|---|---|")
    for r in rows1:
        p = PAPER_TABLE1.get(r.benchmark, ("?",) * 6)
        out.append(
            f"| {r.benchmark} | {p[0]} / {r.detected} | {p[1]} / {r.fp_total} "
            f"| {p[2]} / {r.tp_wolf} | {p[3]} / {r.tp_df} "
            f"| {p[4]} / {r.unknown_wolf} | {_fmt(r.slowdown)}x "
            f"| {_fmt(r.sl) if r.sl else 'n/a'} "
            f"| {_fmt(r.vs) if r.vs else 'n/a'} |"
        )
    det = sum(r.detected for r in rows1)
    if det:
        out.append("")
        out.append(
            f"Cumulative (ours): {det} defects; "
            f"{100*sum(r.fp_total for r in rows1)/det:.1f}% false positives "
            f"(paper: 18.5%), "
            f"{100*sum(r.tp_wolf for r in rows1)/det:.1f}% confirmed by WOLF "
            f"(paper: 55.4%) vs "
            f"{100*sum(r.tp_df for r in rows1)/det:.1f}% by DeadlockFuzzer "
            f"(paper: 35.4%)."
        )
    out.append("")

    # ---- Table 2 --------------------------------------------------------
    rows2 = run_table2(names, settings)
    out.append("## Table 2 — comparison by detected cycles")
    out.append("")
    out.append(
        "| Benchmark | Cycles (paper/ours) | FP WOLF (paper/ours) | "
        "TP WOLF (paper/ours) | TP DF (paper/ours) |"
    )
    out.append("|---|---|---|---|---|")
    for r in rows2:
        p = PAPER_TABLE2.get(r.benchmark, ("?",) * 4)
        out.append(
            f"| {r.benchmark} | {p[0]} / {r.cycles} | {p[1]} / {r.fp_wolf} "
            f"| {p[2]} / {r.tp_wolf} | {p[3]} / {r.tp_df} |"
        )
    cyc = sum(r.cycles for r in rows2)
    if cyc:
        out.append("")
        out.append(
            f"Cumulative (ours): {cyc} cycles; WOLF confirms "
            f"{100*sum(r.tp_wolf for r in rows2)/cyc:.1f}% (paper: 44.9%) vs "
            f"DF {100*sum(r.tp_df for r in rows2)/cyc:.1f}% (paper: 19.1%)."
        )
    out.append("")

    # ---- Figure 8 -----------------------------------------------------------
    fig8_names = [n for n in (names or PAPER_FIG8) if n != "cache4j"]
    rows8 = run_fig8(fig8_names, settings, n_runs=fig8_runs)
    out.append(f"## Figure 8 — hit rates ({fig8_runs} replays per deadlock)")
    out.append("")
    out.append("| Benchmark | WOLF (paper≈/ours) | DF (paper≈/ours) |")
    out.append("|---|---|---|")
    for r in rows8:
        p = PAPER_FIG8.get(r.benchmark, (float("nan"), float("nan")))
        out.append(
            f"| {r.benchmark} | {_fmt(p[0])} / {_fmt(r.wolf)} "
            f"| {_fmt(p[1])} / {_fmt(r.df)} |"
        )
    out.append("")
    dominated = all(r.wolf >= r.df for r in rows8)
    out.append(
        f"WOLF's hit rate dominates DF's on every benchmark: "
        f"{'reproduced' if dominated else 'NOT reproduced'} (paper: yes)."
    )
    out.append("")

    # ---- Figure 10 ------------------------------------------------------------
    rows10 = run_fig10(names, settings, replays_per_cycle=3)
    out.append("## Figure 10 — overheads normalized to DeadlockFuzzer")
    out.append("")
    out.append("| Benchmark | Detection WOLF/DF | Reproduction WOLF/DF |")
    out.append("|---|---|---|")
    for r in rows10:
        out.append(
            f"| {r.benchmark} | {_fmt(r.detection_ratio)} "
            f"| {_fmt(r.reproduction_ratio)} |"
        )
    out.append("")
    out.append(
        "Paper shape: detection ≈1.1x (the Pruner/Generator add ~10%), "
        "reproduction between 0.8x and 2.1x depending on how much new "
        "ground WOLF's replay covers."
    )
    out.append("")
    out.append(
        "Substrate caveat: our simulated executions finish in "
        "milliseconds, so WOLF's per-cycle `Gs` construction (~0.5 ms per "
        "cycle, absent in DF) is visible in the detection ratio for the "
        "cycle-heavy list benchmarks; against the paper's seconds-long "
        "Java executions the same absolute cost is the ~10% they report."
    )
    out.append("")

    # ---- Cross-validation ----------------------------------------------
    out.extend(render_crossval_section(names))

    # ---- Run health -----------------------------------------------------
    # Predict in filter mode here (only here) so the health table shows
    # the verdict split and witness-replay fidelity without perturbing
    # the paper-comparison tables above.
    health_settings = replace(settings, predict="filter")
    health_reports = [
        run_wolf(b, health_settings) for b in select_benchmarks(names)
    ]
    out.extend(render_health_section(health_reports))

    out.append(f"_Total generation time: {time.time()-t0:.1f}s._")
    out.append("")
    return "\n".join(out)
