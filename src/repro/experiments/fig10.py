"""Figure 10 — WOLF's detection and reproduction time overheads
normalized to DeadlockFuzzer's.

Detection covers the instrumented run plus analysis (for WOLF that
includes the Pruner and the Generator — the paper attributes ~10% extra
there); reproduction compares mean wall-clock per replay attempt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.deadlockfuzzer import DeadlockFuzzer, DfConfig
from repro.core.detector import BaseDetector, ExtendedDetector
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.core.replayer import Replayer
from repro.experiments.runner import ExperimentSettings, select_benchmarks
from repro.util.fmt import render_table
from repro.util.rng import DeterministicRNG
from repro.workloads.registry import Benchmark


@dataclass
class OverheadRow:
    benchmark: str
    #: (WOLF detection+pruning+generation time) / (DF detection time)
    detection_ratio: float
    #: (WOLF mean replay time) / (DF mean replay time); NaN if either has
    #: nothing to replay.
    reproduction_ratio: float
    wolf_detect_s: float
    df_detect_s: float
    wolf_replay_s: float
    df_replay_s: float


def measure_benchmark(
    b: Benchmark, settings: ExperimentSettings, *, replays_per_cycle: int = 3
) -> OverheadRow:
    seed = settings.seed_for(b)

    # --- WOLF detection: run + extended analysis + prune + generate.
    t0 = time.perf_counter()
    run = run_detection(b.program, seed, name=b.name, max_steps=settings.max_steps)
    detection = ExtendedDetector(
        max_length=b.max_cycle_length, max_cycles=settings.max_cycles
    ).analyze(run.trace)
    prune = Pruner(detection.vclocks).prune(detection.cycles)
    gen = Generator(detection.relation).run(prune.survivors)
    wolf_detect = time.perf_counter() - t0

    # --- DF detection: run + base analysis.
    t0 = time.perf_counter()
    df_run = run_detection(b.program, seed, name=b.name, max_steps=settings.max_steps)
    df_detection = BaseDetector(
        max_length=b.max_cycle_length, max_cycles=settings.max_cycles
    ).analyze(df_run.trace)
    df_detect = time.perf_counter() - t0

    # --- WOLF reproduction.
    replayer = Replayer(b.program, name=b.name, seed=seed, max_steps=settings.max_steps)
    wolf_attempts = 0
    t0 = time.perf_counter()
    for dec in gen.decisions:
        if dec.verdict is GeneratorVerdict.FALSE:
            continue
        replayer.replay(dec, attempts=replays_per_cycle, stop_on_hit=False)
        wolf_attempts += replays_per_cycle
    wolf_replay = time.perf_counter() - t0

    # --- DF reproduction.
    fuzzer = DeadlockFuzzer(config=DfConfig(seed=seed, max_steps=settings.max_steps))
    df_attempts = 0
    t0 = time.perf_counter()
    for cycle in df_detection.cycles:
        for k in range(replays_per_cycle):
            rng = DeterministicRNG(seed).fork(f"fig10:{sorted(cycle.sites)}:{k}")
            fuzzer.replay_once(b.program, cycle, rng.seed, name=b.name)
            df_attempts += 1
    df_replay = time.perf_counter() - t0

    wolf_per = wolf_replay / wolf_attempts if wolf_attempts else float("nan")
    df_per = df_replay / df_attempts if df_attempts else float("nan")
    return OverheadRow(
        benchmark=b.name,
        detection_ratio=wolf_detect / df_detect if df_detect > 0 else float("nan"),
        reproduction_ratio=wolf_per / df_per if df_per == df_per and df_per > 0 else float("nan"),
        wolf_detect_s=wolf_detect,
        df_detect_s=df_detect,
        wolf_replay_s=wolf_replay,
        df_replay_s=df_replay,
    )


def run_fig10(
    names: Optional[Sequence[str]] = None,
    settings: Optional[ExperimentSettings] = None,
    *,
    replays_per_cycle: int = 3,
) -> List[OverheadRow]:
    settings = settings or ExperimentSettings()
    return [
        measure_benchmark(b, settings, replays_per_cycle=replays_per_cycle)
        for b in select_benchmarks(names)
    ]


def render_fig10(rows: List[OverheadRow]) -> str:
    return render_table(
        ["Benchmark", "Detection (WOLF/DF)", "Reproduction (WOLF/DF)"],
        [
            [r.benchmark, f"{r.detection_ratio:.2f}", f"{r.reproduction_ratio:.2f}"]
            for r in rows
        ],
        title="Figure 10: time overheads of WOLF normalized to DeadlockFuzzer",
    )
