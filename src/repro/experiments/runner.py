"""Shared experiment plumbing: run WOLF and DeadlockFuzzer on a benchmark
with matched settings, as the paper does ("the program is executed twice —
DeadlockFuzzer analyzes one execution and WOLF the other", §4.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.baselines.deadlockfuzzer import DeadlockFuzzer, DfConfig
from repro.core.pipeline import Wolf, WolfConfig
from repro.core.report import WolfReport
from repro.workloads.registry import BENCHMARKS, Benchmark


@dataclass
class ExperimentSettings:
    """Knobs shared by every experiment driver."""

    seed: Optional[int] = None  # None: use each benchmark's detect_seed
    replay_attempts: Optional[int] = None  # None: per-benchmark default
    max_cycles: int = 10_000
    max_steps: int = 200_000
    #: Worker processes for the WOLF pipeline (1 = serial; see
    #: :mod:`repro.core.parallel`).  The DeadlockFuzzer baseline always
    #: runs serially, as the original tool does.
    workers: int = 1
    #: Per-task deadline for the WOLF pipeline's supervised execution
    #: (None = unbounded); blown deadlines become report faults.
    task_timeout: Optional[float] = None
    #: Retries before a failing detection/replay task is quarantined.
    task_retries: int = 2
    #: Analysis engine for WOLF detections: ``"batch"``, ``"streaming"``,
    #: or ``"auto"`` (pick by event count; identical results either way —
    #: see :mod:`repro.core.streaming`).
    engine: str = "batch"
    #: Sharded, deduplicated cycle enumeration (``None`` = engine default:
    #: on for streaming, off for batch; see :mod:`repro.core.sharding`).
    shard_cycles: Optional[bool] = None
    #: Drop provably cycle-free tuples before enumeration
    #: (:func:`repro.core.reduction.reduce_relation`).
    reduce: bool = False
    #: Sync-preserving prediction pass between Generator and Replayer
    #: (``"off"``/``"filter"``/``"certify"``; see
    #: :mod:`repro.core.prediction`).  ``"off"`` keeps the historical
    #: replay-everything tables byte-stable.
    predict: str = "off"

    def seed_for(self, b: Benchmark) -> int:
        return self.seed if self.seed is not None else b.detect_seed

    def attempts_for(self, b: Benchmark) -> int:
        return (
            self.replay_attempts
            if self.replay_attempts is not None
            else b.replay_attempts
        )


def run_wolf(b: Benchmark, settings: ExperimentSettings) -> WolfReport:
    cfg = WolfConfig(
        seed=settings.seed_for(b),
        replay_attempts=settings.attempts_for(b),
        max_cycle_length=b.max_cycle_length,
        max_cycles=settings.max_cycles,
        max_steps=settings.max_steps,
        workers=settings.workers,
        task_timeout=settings.task_timeout,
        task_retries=settings.task_retries,
        engine=settings.engine,
        shard_cycles=settings.shard_cycles,
        reduce=settings.reduce,
        predict=settings.predict,
    )
    return Wolf(config=cfg).analyze(b.program, name=b.name)


def run_df(b: Benchmark, settings: ExperimentSettings) -> WolfReport:
    cfg = DfConfig(
        seed=settings.seed_for(b),
        replay_attempts=settings.attempts_for(b),
        max_cycle_length=b.max_cycle_length,
        max_cycles=settings.max_cycles,
        max_steps=settings.max_steps,
    )
    return DeadlockFuzzer(config=cfg).analyze(b.program, name=b.name)


def run_both(
    b: Benchmark, settings: ExperimentSettings
) -> Tuple[WolfReport, WolfReport]:
    return run_wolf(b, settings), run_df(b, settings)


def select_benchmarks(names: Optional[Sequence[str]] = None) -> Sequence[Benchmark]:
    if not names:
        return BENCHMARKS
    by_name = {b.name: b for b in BENCHMARKS}
    return [by_name[n] for n in names]
