"""Scalability study: analysis cost versus workload size (extension).

The paper calls its algorithm "novel and scalable" and reports ``Gs``
sizes up to 1486 vertices (Jigsaw) — this driver measures how detection
and ``Gs`` construction scale with workload size on graded synthetic
programs, separating the two costs the substrate caveat in
EXPERIMENTS.md discusses:

* trace recording and ``D_sigma`` construction (linear in events);
* cycle enumeration (depends on contention structure, bounded by
  ``max_cycles``);
* per-cycle ``Gs`` construction (scales with ``D'_sigma`` size — the
  dominant extra cost over plain iGoodLock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.detector import ExtendedDetector
from repro.core.generator import Generator
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.runtime.sim.runtime import Program, SimRuntime
from repro.util.fmt import render_table


class ScaledWorkload:
    """Graded contention workload: threads cycle over ordered lock pairs
    (deadlock-free bulk) plus one inverted pair seeding real cycles.

    A plain class with integer state rather than a closure so instances
    are picklable — the parallel engine (``WolfConfig.workers``) ships the
    program object to worker processes.
    """

    def __init__(self, n_threads: int, n_locks: int, iters: int) -> None:
        self.n_threads = n_threads
        self.n_locks = n_locks
        self.iters = iters
        self.__name__ = f"scaled_{n_threads}t_{n_locks}l_{iters}i"

    def __call__(self, rt: SimRuntime) -> None:
        n_locks, iters = self.n_locks, self.iters
        locks = [
            rt.new_lock(name=f"L{i}", site="scale:locks") for i in range(n_locks)
        ]

        def worker(k: int) -> None:
            for i in range(iters):
                a = locks[(k + i) % n_locks]
                b = locks[(k + i + 1) % n_locks]
                first, second = (a, b) if (k + i) % n_locks < (k + i + 1) % n_locks else (b, a)
                with first.at(f"w{k}:o{i % 4}"):
                    with second.at(f"w{k}:i{i % 4}"):
                        pass

        def inverter() -> None:
            with locks[1].at("inv:outer"):
                with locks[0].at("inv:inner"):
                    pass

        handles = [
            rt.spawn(lambda j=i: worker(j), name=f"w{i}", site="scale:spawn")
            for i in range(self.n_threads)
        ]
        handles.append(rt.spawn(inverter, name="inv", site="scale:spawn_inv"))
        for h in handles:
            h.join()


def make_scaled_workload(
    n_threads: int, n_locks: int, iters: int
) -> Program:
    """Factory kept for callers that predate :class:`ScaledWorkload`."""
    return ScaledWorkload(n_threads, n_locks, iters)


@dataclass
class ScalingRow:
    n_threads: int
    iters: int
    events: int
    entries: int
    cycles: int
    run_s: float
    detect_s: float
    gs_s: float
    avg_gs_vertices: float


def measure_point(
    n_threads: int, iters: int, *, n_locks: int = 6, seed: int = 0
) -> ScalingRow:
    program = make_scaled_workload(n_threads, n_locks, iters)

    t0 = time.perf_counter()
    result = run_detection(program, seed, tries=20, max_steps=500_000)
    run_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    detection = ExtendedDetector(max_length=3).analyze(result.trace)
    prune = Pruner(detection.vclocks).prune(detection.cycles)
    detect_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    gen = Generator(detection.relation).run(prune.survivors)
    gs_s = time.perf_counter() - t0

    sizes = [d.gs.num_vertices() for d in gen.decisions]
    return ScalingRow(
        n_threads=n_threads,
        iters=iters,
        events=len(result.trace),
        entries=len(detection.relation),
        cycles=len(detection.cycles),
        run_s=run_s,
        detect_s=detect_s,
        gs_s=gs_s,
        avg_gs_vertices=sum(sizes) / len(sizes) if sizes else 0.0,
    )


def run_scaling(
    points: Optional[Sequence[tuple]] = None, *, seed: int = 0
) -> List[ScalingRow]:
    points = points or [(2, 10), (2, 40), (4, 40), (4, 160), (8, 160)]
    return [measure_point(t, i, seed=seed) for t, i in points]


def render_scaling(rows: List[ScalingRow]) -> str:
    return render_table(
        [
            "threads",
            "iters",
            "events",
            "entries",
            "cycles",
            "run(s)",
            "analyze(s)",
            "Gs(s)",
            "avg |Vs|",
        ],
        [
            [
                r.n_threads,
                r.iters,
                r.events,
                r.entries,
                r.cycles,
                f"{r.run_s:.3f}",
                f"{r.detect_s:.3f}",
                f"{r.gs_s:.3f}",
                f"{r.avg_gs_vertices:.0f}",
            ]
            for r in rows
        ],
        title="Scaling: analysis cost vs workload size",
        align_left=(),
    )
