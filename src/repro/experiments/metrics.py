"""Measurements behind Table 1's statistics columns.

* **detection slowdown** — instrumented run (trace recording + detector
  analysis) over baseline run (events discarded);
* **SL** — average workload stack depth of the deadlocking acquisitions;
* **|Vs|** — average synchronization-dependency-graph size (taken from
  the reports directly).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.detector import ExtendedDetector
from repro.core.report import WolfReport
from repro.runtime.sim.runtime import Program, run_program
from repro.runtime.sim.strategy import RandomStrategy


def detection_slowdown(
    program: Program,
    *,
    seed: int = 0,
    stickiness: float = 0.9,
    runs: int = 3,
    max_steps: int = 200_000,
) -> float:
    """Mean wall-clock ratio of (instrumented run + analysis) to an
    event-free run of the same schedule.

    Uses the same seeds for both sides so the schedules — and therefore
    the executed work — are identical, leaving only the instrumentation
    cost in the ratio.
    """
    instrumented = 0.0
    baseline = 0.0
    detector = ExtendedDetector()
    for k in range(runs):
        strategy = RandomStrategy(seed + k, stickiness=stickiness)
        t0 = time.perf_counter()
        result = run_program(
            program, strategy, seed=seed + k, max_steps=max_steps
        )
        detector.analyze(result.trace)
        instrumented += time.perf_counter() - t0

        strategy = RandomStrategy(seed + k, stickiness=stickiness)
        t0 = time.perf_counter()
        run_program(
            program,
            strategy,
            seed=seed + k,
            max_steps=max_steps,
            record_trace=False,
        )
        baseline += time.perf_counter() - t0
    return instrumented / baseline if baseline > 0 else float("nan")


def average_stack_length(report: WolfReport) -> Optional[float]:
    """Paper's SL: mean stack depth over the deadlocking acquisitions of
    every reported cycle (``None`` when no cycles were reported)."""
    depths = []
    for detection in report.detections:
        table = detection.trace.stack_depths()
        for cycle in detection.cycles:
            for entry in cycle.entries:
                d = table.get(entry.index)
                if d:
                    depths.append(d)
    return sum(depths) / len(depths) if depths else None
