"""Table 2 — the same comparison counted per cycle (paper §4.3).

Counting each lock-graph cycle as a separate defect penalizes both tools
for dynamic re-occurrences of the same source locations, but it is how
DeadlockFuzzer's paper reports results, so the paper includes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.report import Classification as C
from repro.core.report import WolfReport
from repro.experiments.runner import (
    ExperimentSettings,
    run_both,
    select_benchmarks,
)
from repro.util.fmt import percent, render_table


@dataclass
class Table2Row:
    benchmark: str
    cycles: int
    fp_wolf: int
    tp_wolf: int
    tp_df: int
    unknown_wolf: int
    unknown_df: int


def row_for(wolf: WolfReport, df: WolfReport) -> Table2Row:
    return Table2Row(
        benchmark=wolf.program,
        cycles=wolf.n_cycles,
        fp_wolf=(
            wolf.count_cycles(C.FALSE_PRUNER) + wolf.count_cycles(C.FALSE_GENERATOR)
        ),
        tp_wolf=wolf.count_cycles(C.CONFIRMED),
        tp_df=df.count_cycles(C.CONFIRMED),
        unknown_wolf=wolf.count_cycles(C.UNKNOWN),
        unknown_df=df.count_cycles(C.UNKNOWN),
    )


def run_table2(
    names: Optional[Sequence[str]] = None,
    settings: Optional[ExperimentSettings] = None,
) -> List[Table2Row]:
    settings = settings or ExperimentSettings()
    rows: List[Table2Row] = []
    for b in select_benchmarks(names):
        wolf, df = run_both(b, settings)
        rows.append(row_for(wolf, df))
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    headers = [
        "Benchmark",
        "Cycles",
        "FP(WOLF)",
        "TP(WOLF)",
        "TP(DF)",
        "Unk(WOLF)",
        "Unk(DF)",
    ]
    body = [
        [r.benchmark, r.cycles, r.fp_wolf, r.tp_wolf, r.tp_df, r.unknown_wolf, r.unknown_df]
        for r in rows
    ]
    total = sum(r.cycles for r in rows)
    body.append(
        [
            "Cumulative",
            total,
            percent(sum(r.fp_wolf for r in rows), total),
            percent(sum(r.tp_wolf for r in rows), total),
            percent(sum(r.tp_df for r in rows), total),
            percent(sum(r.unknown_wolf for r in rows), total),
            percent(sum(r.unknown_df for r in rows), total),
        ]
    )
    return render_table(headers, body, title="Table 2: comparison by detected cycles")
