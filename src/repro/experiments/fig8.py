"""Figure 8 — hit rate of reproducing each potential deadlock.

For every reported deadlock the paper runs each tool's reproducer 100
times and counts runs that deadlock at the *expected* source locations
(hits).  WOLF replays its Generator survivors via the synchronization
dependency graph; DeadlockFuzzer replays every detected cycle via its
randomized abstraction-pausing.  A benchmark's bar is the mean hit rate
over its deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.baselines.deadlockfuzzer import DeadlockFuzzer, DfConfig, df_is_hit
from repro.core.detector import BaseDetector, ExtendedDetector
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.core.replayer import Replayer
from repro.experiments.runner import ExperimentSettings, select_benchmarks
from repro.util.fmt import render_table
from repro.util.rng import DeterministicRNG
from repro.workloads.registry import Benchmark


@dataclass
class HitRateRow:
    benchmark: str
    wolf: float
    df: float
    #: Per-deadlock rates backing the averages (keyed by site set).
    wolf_per_cycle: Dict[FrozenSet[str], float] = field(default_factory=dict)
    df_per_cycle: Dict[FrozenSet[str], float] = field(default_factory=dict)


def wolf_hit_rates(
    b: Benchmark, settings: ExperimentSettings, n_runs: int
) -> Dict[FrozenSet[str], float]:
    seed = settings.seed_for(b)
    run = run_detection(b.program, seed, name=b.name, max_steps=settings.max_steps)
    detection = ExtendedDetector(
        max_length=b.max_cycle_length, max_cycles=settings.max_cycles
    ).analyze(run.trace)
    survivors = Pruner(detection.vclocks).prune(detection.cycles).survivors
    gen = Generator(detection.relation).run(survivors)
    replayer = Replayer(
        b.program, name=b.name, seed=seed, max_steps=settings.max_steps
    )
    rates: Dict[FrozenSet[str], float] = {}
    for dec in gen.decisions:
        if dec.verdict is GeneratorVerdict.FALSE:
            continue
        outcome = replayer.replay(dec, attempts=n_runs, stop_on_hit=False)
        rates[dec.cycle.sites] = outcome.hit_rate
    return rates


def df_hit_rates(
    b: Benchmark, settings: ExperimentSettings, n_runs: int
) -> Dict[FrozenSet[str], float]:
    seed = settings.seed_for(b)
    run = run_detection(b.program, seed, name=b.name, max_steps=settings.max_steps)
    detection = BaseDetector(
        max_length=b.max_cycle_length, max_cycles=settings.max_cycles
    ).analyze(run.trace)
    fuzzer = DeadlockFuzzer(
        config=DfConfig(seed=seed, max_steps=settings.max_steps)
    )
    rates: Dict[FrozenSet[str], float] = {}
    for cycle in detection.cycles:
        hits = 0
        for k in range(n_runs):
            rng = DeterministicRNG(seed).fork(f"fig8:{sorted(cycle.sites)}:{k}")
            result = fuzzer.replay_once(b.program, cycle, rng.seed, name=b.name)
            hits += df_is_hit(result, cycle)
        rates[cycle.sites] = hits / n_runs if n_runs else 0.0
    return rates


def run_fig8(
    names: Optional[Sequence[str]] = None,
    settings: Optional[ExperimentSettings] = None,
    *,
    n_runs: int = 100,
) -> List[HitRateRow]:
    settings = settings or ExperimentSettings()
    rows: List[HitRateRow] = []
    for b in select_benchmarks(names):
        w = wolf_hit_rates(b, settings, n_runs)
        d = df_hit_rates(b, settings, n_runs)
        rows.append(
            HitRateRow(
                benchmark=b.name,
                wolf=sum(w.values()) / len(w) if w else 0.0,
                df=sum(d.values()) / len(d) if d else 0.0,
                wolf_per_cycle=w,
                df_per_cycle=d,
            )
        )
    return rows


def render_fig8(rows: List[HitRateRow]) -> str:
    table = render_table(
        ["Benchmark", "WOLF", "DF"],
        [[r.benchmark, f"{r.wolf:.2f}", f"{r.df:.2f}"] for r in rows],
        title="Figure 8: deadlock reproduction hit rate",
    )
    # ASCII bars, because the paper draws a bar chart.
    bars = []
    for r in rows:
        wolf_bar = "#" * round(r.wolf * 40)
        df_bar = "-" * round(r.df * 40)
        bars.append(f"{r.benchmark:>16}  WOLF |{wolf_bar}")
        bars.append(f"{'':>16}  DF   |{df_bar}")
    return table + "\n\n" + "\n".join(bars)
