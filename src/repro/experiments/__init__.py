"""Experiment drivers regenerating the paper's evaluation artifacts.

* :mod:`repro.experiments.table1` — Table 1 (defects by source location);
* :mod:`repro.experiments.table2` — Table 2 (per-cycle counting);
* :mod:`repro.experiments.fig8` — Figure 8 (hit rates over N runs);
* :mod:`repro.experiments.fig10` — Figure 10 (WOLF vs DF time overheads);
* :mod:`repro.experiments.metrics` — slowdown / SL / |Vs| measurements.

Every driver prints the same rows/series the paper reports and returns
structured results so the benchmark suite and EXPERIMENTS.md generation
can reuse them.
"""

from repro.experiments.metrics import detection_slowdown, average_stack_length
from repro.experiments.table1 import Table1Row, run_table1, render_table1
from repro.experiments.table2 import Table2Row, run_table2, render_table2
from repro.experiments.fig8 import HitRateRow, run_fig8, render_fig8
from repro.experiments.fig10 import OverheadRow, run_fig10, render_fig10
from repro.experiments.multirun import CoverageRow, render_coverage, run_coverage
from repro.experiments.fuzz import FuzzStats, run_fuzz
from repro.experiments.scaling import ScalingRow, render_scaling, run_scaling

__all__ = [
    "CoverageRow",
    "FuzzStats",
    "HitRateRow",
    "OverheadRow",
    "ScalingRow",
    "Table1Row",
    "Table2Row",
    "average_stack_length",
    "detection_slowdown",
    "render_coverage",
    "render_fig10",
    "render_fig8",
    "render_table1",
    "render_table2",
    "render_scaling",
    "run_coverage",
    "run_fig10",
    "run_fig8",
    "run_fuzz",
    "run_scaling",
    "run_table1",
    "run_table2",
]
