"""Detection coverage vs number of observed executions (extension).

Dynamic analyses only see what the test inputs and explored schedules
expose (paper §4.4: "the quality of the results will be a function of the
test inputs ... and explored schedules").  This driver quantifies that for
the schedule dimension: how many distinct defects (unique source-location
sets) are discovered cumulatively as more seeded detection runs are
analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.core.detector import ExtendedDetector
from repro.core.pipeline import run_detection
from repro.experiments.runner import ExperimentSettings, select_benchmarks
from repro.util.fmt import render_table
from repro.workloads.registry import Benchmark


@dataclass
class CoverageRow:
    benchmark: str
    #: cumulative distinct defects after run 1, 2, ..., n
    cumulative_defects: List[int] = field(default_factory=list)
    #: cumulative distinct cycles (by entry-index identity)
    cumulative_cycles: List[int] = field(default_factory=list)

    @property
    def saturated_after(self) -> int:
        """First run index (1-based) after which no new defect appeared."""
        if not self.cumulative_defects:
            return 0
        final = self.cumulative_defects[-1]
        for i, v in enumerate(self.cumulative_defects):
            if v == final:
                return i + 1
        return len(self.cumulative_defects)


def coverage_for(
    b: Benchmark, *, runs: int = 8, settings: Optional[ExperimentSettings] = None
) -> CoverageRow:
    settings = settings or ExperimentSettings()
    base_seed = settings.seed_for(b)
    defects: Set[FrozenSet[str]] = set()
    cycles: Set[tuple] = set()
    row = CoverageRow(benchmark=b.name)
    detector = ExtendedDetector(max_length=b.max_cycle_length)
    for k in range(runs):
        run = run_detection(
            b.program, base_seed + 1000 * k, name=b.name, max_steps=settings.max_steps
        )
        detection = detector.analyze(run.trace)
        for c in detection.cycles:
            defects.add(c.defect_key)
            cycles.add(tuple((e.index, e.lock) for e in c.entries))
        row.cumulative_defects.append(len(defects))
        row.cumulative_cycles.append(len(cycles))
    return row


def run_coverage(
    names: Optional[Sequence[str]] = None,
    settings: Optional[ExperimentSettings] = None,
    *,
    runs: int = 8,
) -> List[CoverageRow]:
    return [
        coverage_for(b, runs=runs, settings=settings)
        for b in select_benchmarks(names)
    ]


def render_coverage(rows: List[CoverageRow]) -> str:
    n = max((len(r.cumulative_defects) for r in rows), default=0)
    headers = ["Benchmark"] + [f"run{i+1}" for i in range(n)] + ["saturated@"]
    body = []
    for r in rows:
        body.append([r.benchmark, *r.cumulative_defects, r.saturated_after])
    return render_table(
        headers,
        body,
        title="Detection coverage: cumulative distinct defects per added run",
    )
