/* wolfkernel.c — the native analysis kernel behind repro.core.nativekernel.
 *
 * One compiled pass fuses, per EVENTS chunk payload of a .wtrc trace:
 *
 *   varint/zigzag decode  ->  interned-table bounds checks  ->  tau
 *   maintenance (Algorithm 1's scalar timestamps)  ->  D_sigma lockdep
 *   entry extraction  ->  clock-op / acquire-tau logs
 *
 * so the Python hot loop (one TraceEvent object + one update_clocks call
 * + one entry_from_acquire call per event) disappears.  The kernel never
 * sees whole files: Python keeps all chunk framing, table-chunk decoding
 * and error reporting, and hands this kernel only raw EVENTS payload
 * bytes (zero-copy straight out of an mmap'd file).  The kernel's output
 * is four flat int64 logs — clock ops, acquire taus, lockdep entries and
 * their held-lock pool — which Python replays/materializes lazily into
 * the exact objects the pure-Python engine would have built.
 *
 * Determinism contract (enforced by the python-vs-native differential
 * suite in tests/test_nativekernel.py):
 *
 *   - the kernel MUST fail (with state untouched) on every payload the
 *     pure-Python decoder fails on — wk_feed_events validates the whole
 *     payload against the current table sizes before mutating anything,
 *     so the caller can re-decode the failing payload in Python and
 *     surface the authentic exception;
 *   - the kernel must never *succeed* where Python fails; the one
 *     admitted divergence is arbitrary-precision varints (> 64 bits),
 *     which Python's bignums accept and the kernel rejects with
 *     WK_EOVERFLOW — the Python wrapper detects this (Python re-decode
 *     succeeds) and falls back to the pure-Python engine.
 *
 * Plain C99, no Python.h: built as a standalone shared object by
 * repro.core.nativekernel (cc -O2 -shared -fPIC) and driven through the
 * cffi ABI, so no Python development headers are required.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#define WK_KERNEL_VERSION "1.0.0"
#define WK_ABI 1

/* Error codes (negative).  The Python wrapper maps any failure to a
 * pure-Python re-decode of the same payload, so the exact code only
 * distinguishes "Python would fail too" from the overflow divergence. */
#define WK_OK 0
#define WK_ETRUNC (-1)    /* read past payload end (Python: IndexError)   */
#define WK_EINDEX (-2)    /* interned-table index out of range            */
#define WK_ETAG (-3)      /* unknown event tag (Python: ValueError)       */
#define WK_EOVERFLOW (-4) /* varint/step exceeds 64 bits: Python diverges */
#define WK_ENOMEM (-5)    /* allocation failure                           */

/* Event tags — must match repro.runtime.tracefile._TAGS. */
enum {
    TAG_BEGIN = 0,
    TAG_END = 1,
    TAG_SPAWN = 2,
    TAG_JOIN = 3,
    TAG_ACQUIRE = 4,
    TAG_RELEASE = 5,
    TAG_WAIT = 6,
    TAG_NOTIFY = 7,
    TAG_BLOCK = 8,
};

/* Clock-op log opcodes (replayed through the real update_clocks). */
enum {
    OP_TOUCH = 0, /* a = thread                  */
    OP_SPAWN = 1, /* a = parent, b = child       */
    OP_JOIN = 2,  /* a = joiner, b = target      */
};

/* ------------------------------------------------------------------ */
/* growable int64 vector                                              */

typedef struct {
    int64_t *data;
    uint64_t len;
    uint64_t cap;
} i64vec;

static int vec_reserve(i64vec *v, uint64_t extra) {
    uint64_t need = v->len + extra;
    uint64_t cap;
    int64_t *p;
    if (need <= v->cap)
        return WK_OK;
    cap = v->cap ? v->cap : 64;
    while (cap < need)
        cap *= 2;
    p = (int64_t *)realloc(v->data, cap * sizeof(int64_t));
    if (!p)
        return WK_ENOMEM;
    v->data = p;
    v->cap = cap;
    return WK_OK;
}

/* push without a capacity check — caller must have reserved. */
static void vec_push(i64vec *v, int64_t x) { v->data[v->len++] = x; }

static void vec_free(i64vec *v) {
    free(v->data);
    v->data = NULL;
    v->len = v->cap = 0;
}

/* ------------------------------------------------------------------ */
/* kernel context                                                     */

typedef struct wk_ctx {
    /* interned-table sizes, synced from Python after each table chunk */
    uint64_t n_strings;
    uint64_t n_threads;
    uint64_t n_locks;

    /* per-thread running state, indexed by thread table index */
    int64_t *tau; /* 0 encodes the paper's ⊥ (never ran)          */
    int64_t *pos; /* non-reentrant acquire count (entry position) */
    uint64_t threads_cap;

    int64_t last_step;    /* step-delta accumulator across chunks */
    uint64_t events_read; /* total events decoded                 */

    i64vec clock_ops; /* triples: op, a, b                             */
    i64vec acq;       /* pairs: step, tau  (every acquire, reentrant   *
                       * included — mirrors update_clocks)             */
    i64vec entries;   /* 10 per non-reentrant acquire: step, thread,   *
                       * lock, ix_thread, ix_site, ix_occ, tau, pos,   *
                       * nheld, held_off                               */
    i64vec held;      /* quads: lock, h_thread, h_site, h_occ          */
    i64vec nonempty;  /* entry indices with nheld > 0                  */

    int err_code;
    char err[192];
} wk_ctx;

/* ------------------------------------------------------------------ */
/* varint decode (LEB128 + zigzag), bounds- and overflow-checked      */

static int get_uvarint(const uint8_t *p, uint64_t len, uint64_t *pos,
                       uint64_t *out) {
    uint64_t result = 0;
    unsigned shift = 0;
    for (;;) {
        uint8_t b;
        if (*pos >= len)
            return WK_ETRUNC;
        b = p[(*pos)++];
        /* Python decodes arbitrary-precision ints here; anything that
         * cannot round-trip through uint64 is the admitted divergence. */
        if (shift >= 64 || (shift == 63 && (b & 0x7Fu) > 1))
            return WK_EOVERFLOW;
        result |= (uint64_t)(b & 0x7Fu) << shift;
        if (!(b & 0x80u)) {
            *out = result;
            return WK_OK;
        }
        shift += 7;
    }
}

static int get_svarint(const uint8_t *p, uint64_t len, uint64_t *pos,
                       int64_t *out) {
    uint64_t zz;
    int rc = get_uvarint(p, len, pos, &zz);
    if (rc != WK_OK)
        return rc;
    *out = (int64_t)(zz >> 1) ^ -(int64_t)(zz & 1);
    return WK_OK;
}

/* ------------------------------------------------------------------ */
/* public API                                                         */

const char *wk_version(void) { return WK_KERNEL_VERSION; }
int wk_abi(void) { return WK_ABI; }

wk_ctx *wk_new(void) {
    wk_ctx *c = (wk_ctx *)calloc(1, sizeof(wk_ctx));
    return c;
}

void wk_free(wk_ctx *c) {
    if (!c)
        return;
    free(c->tau);
    free(c->pos);
    vec_free(&c->clock_ops);
    vec_free(&c->acq);
    vec_free(&c->entries);
    vec_free(&c->held);
    vec_free(&c->nonempty);
    free(c);
}

const char *wk_error(wk_ctx *c) { return c->err; }
int wk_error_code(wk_ctx *c) { return c->err_code; }

/* Table sizes only ever grow (the writer interns before referencing). */
int wk_set_tables(wk_ctx *c, uint64_t n_strings, uint64_t n_threads,
                  uint64_t n_locks) {
    if (n_strings > c->n_strings)
        c->n_strings = n_strings;
    if (n_locks > c->n_locks)
        c->n_locks = n_locks;
    if (n_threads > c->n_threads)
        c->n_threads = n_threads;
    if (c->n_threads > c->threads_cap) {
        uint64_t cap = c->threads_cap ? c->threads_cap : 16;
        int64_t *t, *p;
        while (cap < c->n_threads)
            cap *= 2;
        t = (int64_t *)realloc(c->tau, cap * sizeof(int64_t));
        if (!t)
            return WK_ENOMEM;
        c->tau = t;
        p = (int64_t *)realloc(c->pos, cap * sizeof(int64_t));
        if (!p)
            return WK_ENOMEM;
        c->pos = p;
        memset(c->tau + c->threads_cap, 0,
               (cap - c->threads_cap) * sizeof(int64_t));
        memset(c->pos + c->threads_cap, 0,
               (cap - c->threads_cap) * sizeof(int64_t));
        c->threads_cap = cap;
    }
    return WK_OK;
}

/* Pass 1: decode + bounds-check the whole payload without touching any
 * state.  On success reports the event count and the total held-lock
 * slots so pass 2 can pre-reserve and therefore cannot fail midway. */
static int validate_events(wk_ctx *c, const uint8_t *p, uint64_t len,
                           uint64_t *out_n, uint64_t *out_held) {
    uint64_t pos = 0, n, i, held_total = 0;
    int64_t step = c->last_step;
    int rc;

    if ((rc = get_uvarint(p, len, &pos, &n)) != WK_OK)
        return rc;
    for (i = 0; i < n; i++) {
        uint8_t tag;
        int64_t delta;
        uint64_t t, u;
        if (pos >= len)
            return WK_ETRUNC;
        tag = p[pos++];
        if ((rc = get_svarint(p, len, &pos, &delta)) != WK_OK)
            return rc;
        if (__builtin_add_overflow(step, delta, &step))
            return WK_EOVERFLOW;
        if ((rc = get_uvarint(p, len, &pos, &t)) != WK_OK)
            return rc;
        if (t >= c->n_threads)
            return WK_EINDEX;
        switch (tag) {
        case TAG_BEGIN:
        case TAG_END:
            break;
        case TAG_SPAWN:
        case TAG_JOIN:
            if ((rc = get_uvarint(p, len, &pos, &u)) != WK_OK)
                return rc;
            if (u >= c->n_threads)
                return WK_EINDEX;
            break;
        case TAG_ACQUIRE: {
            uint64_t lk, it, isite, occ, nheld, h;
            if ((rc = get_uvarint(p, len, &pos, &lk)) != WK_OK)
                return rc;
            if (lk >= c->n_locks)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &it)) != WK_OK)
                return rc;
            if (it >= c->n_threads)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &isite)) != WK_OK)
                return rc;
            if (isite >= c->n_strings)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &occ)) != WK_OK)
                return rc;
            if (occ > (uint64_t)INT64_MAX)
                return WK_EOVERFLOW;
            if ((rc = get_uvarint(p, len, &pos, &nheld)) != WK_OK)
                return rc;
            for (h = 0; h < nheld; h++) {
                if ((rc = get_uvarint(p, len, &pos, &u)) != WK_OK)
                    return rc;
                if (u >= c->n_locks)
                    return WK_EINDEX;
            }
            for (h = 0; h < nheld; h++) {
                uint64_t ht, hs, ho;
                if ((rc = get_uvarint(p, len, &pos, &ht)) != WK_OK)
                    return rc;
                if (ht >= c->n_threads)
                    return WK_EINDEX;
                if ((rc = get_uvarint(p, len, &pos, &hs)) != WK_OK)
                    return rc;
                if (hs >= c->n_strings)
                    return WK_EINDEX;
                if ((rc = get_uvarint(p, len, &pos, &ho)) != WK_OK)
                    return rc;
                if (ho > (uint64_t)INT64_MAX)
                    return WK_EOVERFLOW;
            }
            if (pos >= len) /* reentrant flag byte */
                return WK_ETRUNC;
            pos++;
            if ((rc = get_uvarint(p, len, &pos, &u)) != WK_OK) /* depth */
                return rc;
            held_total += nheld;
            break;
        }
        case TAG_RELEASE: {
            uint64_t lk, site;
            if ((rc = get_uvarint(p, len, &pos, &lk)) != WK_OK)
                return rc;
            if (lk >= c->n_locks)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &site)) != WK_OK)
                return rc;
            if (site >= c->n_strings)
                return WK_EINDEX;
            if (pos >= len) /* reentrant flag byte */
                return WK_ETRUNC;
            pos++;
            break;
        }
        case TAG_WAIT:
        case TAG_NOTIFY: {
            uint64_t cond, lk, site;
            if ((rc = get_uvarint(p, len, &pos, &cond)) != WK_OK)
                return rc;
            if (cond >= c->n_strings)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &lk)) != WK_OK)
                return rc;
            if (lk >= c->n_locks)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &site)) != WK_OK)
                return rc;
            if (site >= c->n_strings)
                return WK_EINDEX;
            if (tag == TAG_NOTIFY) {
                if ((rc = get_uvarint(p, len, &pos, &u)) != WK_OK) /* woken */
                    return rc;
                if (pos >= len) /* notify_all flag byte */
                    return WK_ETRUNC;
                pos++;
            }
            break;
        }
        case TAG_BLOCK: {
            uint64_t lk, it, isite, occ, holder;
            if ((rc = get_uvarint(p, len, &pos, &lk)) != WK_OK)
                return rc;
            if (lk >= c->n_locks)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &it)) != WK_OK)
                return rc;
            if (it >= c->n_threads)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &isite)) != WK_OK)
                return rc;
            if (isite >= c->n_strings)
                return WK_EINDEX;
            if ((rc = get_uvarint(p, len, &pos, &occ)) != WK_OK)
                return rc;
            if ((rc = get_uvarint(p, len, &pos, &holder)) != WK_OK)
                return rc;
            if (holder && holder - 1 >= c->n_threads)
                return WK_EINDEX;
            break;
        }
        default:
            return WK_ETAG;
        }
    }
    *out_n = n;
    *out_held = held_total;
    return WK_OK;
}

/* Pass 2: apply the (already validated) payload.  Cannot fail: every
 * push goes into pre-reserved capacity and every index was checked. */
static void apply_events(wk_ctx *c, const uint8_t *p, uint64_t len,
                         uint64_t n) {
    uint64_t pos = 0, i, ignored;
    int64_t step = c->last_step;

    (void)get_uvarint(p, len, &pos, &ignored); /* skip the count */
    for (i = 0; i < n; i++) {
        uint8_t tag = p[pos++];
        int64_t delta = 0;
        uint64_t t, u;
        (void)get_svarint(p, len, &pos, &delta);
        step += delta;
        (void)get_uvarint(p, len, &pos, &t);

        /* Algorithm 1 line 11: first event of a thread sets tau to 1. */
        if (c->tau[t] == 0) {
            c->tau[t] = 1;
            vec_push(&c->clock_ops, OP_TOUCH);
            vec_push(&c->clock_ops, (int64_t)t);
            vec_push(&c->clock_ops, 0);
        }

        switch (tag) {
        case TAG_BEGIN:
        case TAG_END:
            break;
        case TAG_SPAWN:
            (void)get_uvarint(p, len, &pos, &u);
            c->tau[t] += 1;
            c->tau[u] = 1; /* child is now touched (update_clocks line) */
            vec_push(&c->clock_ops, OP_SPAWN);
            vec_push(&c->clock_ops, (int64_t)t);
            vec_push(&c->clock_ops, (int64_t)u);
            break;
        case TAG_JOIN:
            (void)get_uvarint(p, len, &pos, &u);
            c->tau[t] += 1;
            vec_push(&c->clock_ops, OP_JOIN);
            vec_push(&c->clock_ops, (int64_t)t);
            vec_push(&c->clock_ops, (int64_t)u);
            break;
        case TAG_ACQUIRE: {
            uint64_t lk, it, isite, occ, nheld, h;
            int64_t held_off = (int64_t)(c->held.len / 4);
            int reentrant;
            (void)get_uvarint(p, len, &pos, &lk);
            (void)get_uvarint(p, len, &pos, &it);
            (void)get_uvarint(p, len, &pos, &isite);
            (void)get_uvarint(p, len, &pos, &occ);
            (void)get_uvarint(p, len, &pos, &nheld);
            for (h = 0; h < nheld; h++) {
                (void)get_uvarint(p, len, &pos, &u);
                vec_push(&c->held, (int64_t)u);
                vec_push(&c->held, 0); /* thread/site/occ fill below */
                vec_push(&c->held, 0);
                vec_push(&c->held, 0);
            }
            for (h = 0; h < nheld; h++) {
                uint64_t ht, hs, ho;
                int64_t *q = c->held.data + 4 * ((uint64_t)held_off + h);
                (void)get_uvarint(p, len, &pos, &ht);
                (void)get_uvarint(p, len, &pos, &hs);
                (void)get_uvarint(p, len, &pos, &ho);
                q[1] = (int64_t)ht;
                q[2] = (int64_t)hs;
                q[3] = (int64_t)ho;
            }
            reentrant = p[pos] == 1;
            pos++;
            (void)get_uvarint(p, len, &pos, &u); /* stack depth */
            /* update_clocks records acquire_tau for *every* acquire. */
            vec_push(&c->acq, step);
            vec_push(&c->acq, c->tau[t]);
            if (!reentrant) {
                if (nheld)
                    vec_push(&c->nonempty,
                             (int64_t)(c->entries.len / 10));
                vec_push(&c->entries, step);
                vec_push(&c->entries, (int64_t)t);
                vec_push(&c->entries, (int64_t)lk);
                vec_push(&c->entries, (int64_t)it);
                vec_push(&c->entries, (int64_t)isite);
                vec_push(&c->entries, (int64_t)occ);
                vec_push(&c->entries, c->tau[t]);
                vec_push(&c->entries, c->pos[t]);
                vec_push(&c->entries, (int64_t)nheld);
                vec_push(&c->entries, held_off);
                c->pos[t] += 1;
            } else {
                /* reentrant acquires mint no entry; drop their held
                 * quads again so held_off stays the entry log's pool. */
                c->held.len = 4 * (uint64_t)held_off;
            }
            break;
        }
        case TAG_RELEASE:
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            pos++; /* reentrant flag */
            break;
        case TAG_WAIT:
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            break;
        case TAG_NOTIFY:
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u); /* woken */
            pos++;                               /* notify_all flag */
            break;
        case TAG_BLOCK:
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            (void)get_uvarint(p, len, &pos, &u);
            break;
        }
        c->events_read += 1;
    }
    c->last_step = step;
}

int wk_feed_events(wk_ctx *c, const uint8_t *payload, uint64_t len) {
    uint64_t n = 0, held_total = 0;
    int rc;

    c->err_code = WK_OK;
    c->err[0] = '\0';
    rc = validate_events(c, payload, len, &n, &held_total);
    if (rc != WK_OK) {
        c->err_code = rc;
        snprintf(c->err, sizeof(c->err),
                 "native kernel: payload rejected (code %d)", rc);
        return rc;
    }
    /* Reserve worst-case capacity so pass 2 cannot fail midway: per
     * event at most one touch op plus one spawn/join op (3 i64 each),
     * one acquire pair, one 10-slot entry; held quads counted exactly. */
    if (vec_reserve(&c->clock_ops, 6 * n) != WK_OK ||
        vec_reserve(&c->acq, 2 * n) != WK_OK ||
        vec_reserve(&c->entries, 10 * n) != WK_OK ||
        vec_reserve(&c->nonempty, n) != WK_OK ||
        vec_reserve(&c->held, 4 * held_total) != WK_OK) {
        c->err_code = WK_ENOMEM;
        snprintf(c->err, sizeof(c->err), "native kernel: out of memory");
        return WK_ENOMEM;
    }
    apply_events(c, payload, len, n);
    return WK_OK;
}

/* ------------------------------------------------------------------ */
/* result getters — pointers are valid until the next wk_feed_events  */

int64_t wk_last_step(wk_ctx *c) { return c->last_step; }
uint64_t wk_events_read(wk_ctx *c) { return c->events_read; }

uint64_t wk_n_clock_ops(wk_ctx *c) { return c->clock_ops.len / 3; }
const int64_t *wk_clock_ops(wk_ctx *c) { return c->clock_ops.data; }

uint64_t wk_n_acquires(wk_ctx *c) { return c->acq.len / 2; }
const int64_t *wk_acquires(wk_ctx *c) { return c->acq.data; }

uint64_t wk_n_entries(wk_ctx *c) { return c->entries.len / 10; }
const int64_t *wk_entries(wk_ctx *c) { return c->entries.data; }

uint64_t wk_n_held(wk_ctx *c) { return c->held.len / 4; }
const int64_t *wk_held(wk_ctx *c) { return c->held.data; }

uint64_t wk_n_nonempty(wk_ctx *c) { return c->nonempty.len; }
const int64_t *wk_nonempty(wk_ctx *c) { return c->nonempty.data; }
