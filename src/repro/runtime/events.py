"""Trace event model: the contract between substrates and the analysis.

A :class:`Trace` is the totally-ordered sequence of synchronization events
one execution produced, exactly the information the paper's instrumentation
records (§3.1): ``Lock``, ``Unlock``, ``t.start()``, ``t.join()``.  Events
carry the deterministic identities from :mod:`repro.util.ids`; the
Extended Dynamic Cycle Detector (:mod:`repro.core.detector`) reconstructs
``D_sigma``, timestamps and vector clocks purely from this stream, so the
analysis is usable on any substrate — or on synthetic event lists in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.util.ids import ExecIndex, LockId, Site, ThreadId


@dataclass(frozen=True)
class TraceEvent:
    """Base class: ``step`` is the global total-order position (0-based)."""

    step: int
    thread: ThreadId


@dataclass(frozen=True)
class BeginEvent(TraceEvent):
    """Thread began executing (its first scheduled step)."""


@dataclass(frozen=True)
class EndEvent(TraceEvent):
    """Thread ran to completion."""


@dataclass(frozen=True)
class SpawnEvent(TraceEvent):
    """``thread`` executed ``child.start()`` (paper: *t.start()*)."""

    child: ThreadId


@dataclass(frozen=True)
class JoinEvent(TraceEvent):
    """``thread`` completed ``target.join()`` (paper: *t.join()*)."""

    target: ThreadId


@dataclass(frozen=True)
class AcquireEvent(TraceEvent):
    """``thread`` acquired ``lock`` at ``index``.

    ``held`` / ``held_indices`` snapshot the lockset :math:`L_t` and context
    :math:`C_t` *before* this acquisition, in acquisition order, so an
    :class:`AcquireEvent` carries everything an :math:`\\eta` tuple needs.
    ``reentrant`` marks recursive acquisitions of an already-held monitor;
    the detector skips those (they cannot introduce new dependencies).
    """

    lock: LockId
    index: ExecIndex
    held: Tuple[LockId, ...]
    held_indices: Tuple[ExecIndex, ...]
    reentrant: bool = False
    #: Workload call-stack depth at the acquisition (frames outside the
    #: runtime machinery) — the paper's *SL* statistic (Table 1).
    stack_depth: int = 0


@dataclass(frozen=True)
class ReleaseEvent(TraceEvent):
    """``thread`` released ``lock`` (innermost release site)."""

    lock: LockId
    site: Site
    reentrant: bool = False


@dataclass(frozen=True)
class WaitEvent(TraceEvent):
    """``thread`` began waiting on a condition, releasing ``lock``.

    The monitor release itself is recorded as a separate
    :class:`ReleaseEvent` (and the later wakeup as an
    :class:`AcquireEvent`), so the lock-dependency analysis needs no
    special handling for waits.
    """

    condition: str
    lock: LockId
    site: Site


@dataclass(frozen=True)
class NotifyEvent(TraceEvent):
    """``thread`` signalled a condition, waking ``woken`` waiters."""

    condition: str
    lock: LockId
    site: Site
    woken: int
    notify_all: bool = False


@dataclass(frozen=True)
class BlockEvent(TraceEvent):
    """``thread`` attempted ``lock`` at ``index`` and found it held.

    Informational: the eventual :class:`AcquireEvent` is what the analysis
    consumes, but blocked attempts identify deadlocking acquisitions when a
    replay run ends in a deadlock.
    """

    lock: LockId
    index: ExecIndex
    holder: ThreadId


@dataclass
class Trace:
    """One execution's event stream plus run metadata."""

    program: str = ""
    seed: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def stack_depths(self) -> Dict[ExecIndex, int]:
        """Map each acquisition's index to its workload stack depth."""
        return {
            ev.index: ev.stack_depth
            for ev in self.events
            if isinstance(ev, AcquireEvent)
        }

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- convenience views --------------------------------------------------

    def threads(self) -> List[ThreadId]:
        """All threads that appear, in order of first appearance."""
        seen: Dict[ThreadId, None] = {}
        for ev in self.events:
            seen.setdefault(ev.thread, None)
            if isinstance(ev, SpawnEvent):
                seen.setdefault(ev.child, None)
        return list(seen)

    def locks(self) -> List[LockId]:
        seen: Dict[LockId, None] = {}
        for ev in self.events:
            if isinstance(ev, (AcquireEvent, ReleaseEvent, BlockEvent)):
                seen.setdefault(ev.lock, None)
        return list(seen)

    def events_of(self, thread: ThreadId) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.thread == thread]

    def acquisitions(self, *, include_reentrant: bool = False) -> List[AcquireEvent]:
        return [
            ev
            for ev in self.events
            if isinstance(ev, AcquireEvent) and (include_reentrant or not ev.reentrant)
        ]

    def parent_of(self, thread: ThreadId) -> Optional[ThreadId]:
        for ev in self.events:
            if isinstance(ev, SpawnEvent) and ev.child == thread:
                return ev.thread
        return None

    def end_steps(self) -> Dict[ThreadId, int]:
        """Step of each thread's first :class:`EndEvent` (threads still
        running — or deadlocked — at the end of the trace are absent)."""
        out: Dict[ThreadId, int] = {}
        for ev in self.events:
            if isinstance(ev, EndEvent) and ev.thread not in out:
                out[ev.thread] = ev.step
        return out

    def spawn_steps(self) -> Dict[ThreadId, int]:
        """Step at which each thread was spawned (root threads absent)."""
        out: Dict[ThreadId, int] = {}
        for ev in self.events:
            if isinstance(ev, SpawnEvent) and ev.child not in out:
                out[ev.child] = ev.step
        return out

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Dump a human-inspectable JSON rendering (for debugging/archival).

        Identities are rendered with ``pretty()``; this is intentionally a
        one-way format — replay works from live :class:`Trace` objects.
        """
        # Local import: serialize imports this module at top level.
        from repro.runtime.serialize import encode_event_fields

        def enc(ev: TraceEvent) -> dict:
            return encode_event_fields(
                ev,
                thread=lambda t: t.pretty(),
                lock=lambda l: l.pretty(),
                index=lambda ix: ix.pretty(),
            )

        return json.dumps(
            {
                "program": self.program,
                "seed": self.seed,
                "events": [enc(ev) for ev in self.events],
            },
            indent=2,
        )


class SinkTrace(Trace):
    """Forwards events to sinks without storing them.

    A sink is any callable taking one :class:`TraceEvent` — a
    :class:`~repro.runtime.tracefile.TraceFileWriter`, a
    :class:`~repro.core.streaming.StreamingDetector`'s ``feed``, or both at
    once.  This is how a runtime records/analyzes an execution with memory
    bounded by the sinks' own state instead of the event count.
    """

    def __init__(self, *sinks, program: str = "", seed: int = 0) -> None:
        super().__init__(program=program, seed=seed)
        self.sinks = tuple(sinks)

    def append(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink(event)


class NullTrace(SinkTrace):
    """Discards events (zero sinks): the 'uninstrumented' baseline for
    slowdown measurements (Table 1's detection-overhead column)."""
