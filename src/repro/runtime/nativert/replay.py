"""Replay on real threads: gate instrumented acquisitions by ``Gs``.

This is the paper's actual implementation strategy (§4): a monitor
object observes the synchronization operations of the threads expected to
deadlock and pauses them at acquisitions whose ``Gs`` dependencies are
unsatisfied.  Here the "pause" is a condition wait inside
:meth:`NativeReplayer.before_acquire`; acquisitions notify the condition
as vertices drain out of the working graph.

Real threads cannot be steered perfectly (the OS interleaves the
unmonitored parts), so a stall timeout force-releases the oldest waiter —
Algorithm 4's lines 5-7 in wall-clock form.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Set

from repro.core.syncgraph import SyncGraph
from repro.runtime.sim.result import DeadlockInfo
from repro.util.ids import ExecIndex, ThreadId


class NativeReplayer:
    """Gate object plugged into :class:`NativeRuntime` (``rt.gate``)."""

    def __init__(self, gs: SyncGraph, *, stall_timeout: float = 0.25) -> None:
        self.gs = gs
        self.graph = gs.graph.copy()
        self.by_index = dict(gs.by_index)
        self.cycle_threads: Set[ThreadId] = set(gs.threads)
        self.stall_timeout = stall_timeout
        self._cond = threading.Condition()
        self.forced_releases = 0

    # -- hooks called by InstrumentedLock ------------------------------------

    def before_acquire(self, thread: ThreadId, lock, index: ExecIndex) -> None:
        if thread not in self.cycle_threads:
            return
        with self._cond:
            deadline = time.monotonic() + self.stall_timeout
            while self._gated(index):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Stall: force-release this waiter (progress beats
                    # fidelity, Algorithm 4 lines 5-7).
                    self.forced_releases += 1
                    return
                self._cond.wait(remaining)

    def on_acquired(self, thread: ThreadId, lock, index: ExecIndex) -> None:
        v = self.by_index.get(index)
        if v is None:
            return
        with self._cond:
            if v in self.graph:
                for u in self.graph.ancestors(v):
                    self.graph.remove_node(u)
                self.graph.remove_node(v)
                self._cond.notify_all()

    # -- internals ----------------------------------------------------------------

    def _gated(self, index: ExecIndex) -> bool:
        v = self.by_index.get(index)
        if v is None or v not in self.graph:
            return False
        return any(u.thread != v.thread for u in self.graph.predecessors(v))

    # -- outcome ------------------------------------------------------------------------

    def is_hit(self, deadlock: Optional[DeadlockInfo]) -> bool:
        return deadlock is not None and deadlock.sites == self.gs.cycle.sites
