"""Instrumented real-thread runtime.

All state shared between workload threads is guarded by one internal
mutex (the GIL alone is not enough for compound updates).  Blocked
acquisitions poll with a timeout; each timeout tick runs an inline
deadlock check over the wait-for graph, so no separate watchdog thread is
needed and detection latency is bounded by ``poll_interval``.

On a detected deadlock every cycle member is marked for abort: its next
poll tick raises :class:`DeadlockAborted`, unwinding ``with`` blocks (and
releasing locks), so the process recovers instead of hanging — the
recorded :class:`~repro.runtime.sim.result.DeadlockInfo` is the evidence.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    BlockEvent,
    EndEvent,
    JoinEvent,
    ReleaseEvent,
    SinkTrace,
    SpawnEvent,
    Trace,
)
from repro.runtime.sim.result import BlockedAt, DeadlockInfo
from repro.util.digraph import DiGraph
from repro.util.ids import (
    ExecIndex,
    LockId,
    OccurrenceCounter,
    Site,
    ThreadId,
    auto_site,
)


# Bound at import time so instrumented internals keep working while
# ``patch_threading`` has swapped the public constructors.
_OrigLock = threading.Lock


class DeadlockAborted(BaseException):
    """Raised inside a deadlocked thread to break the cycle and let the
    process recover.  ``BaseException`` so workload ``except Exception``
    blocks cannot swallow it."""


class _ThreadState:
    __slots__ = ("tid", "occ", "spawn_occ", "lock_occ", "held")

    def __init__(self, tid: ThreadId) -> None:
        self.tid = tid
        self.occ = OccurrenceCounter()
        self.spawn_occ = OccurrenceCounter()
        self.lock_occ = OccurrenceCounter()
        self.held: List[Tuple["InstrumentedLock", ExecIndex]] = []


class NativeRuntime:
    """Trace recorder + deadlock monitor for real ``threading`` code."""

    def __init__(
        self,
        *,
        name: str = "",
        poll_interval: float = 0.005,
        gate: Optional[object] = None,
        trace_sink: Optional[Callable] = None,
    ) -> None:
        # With a sink the runtime streams events out (writer, streaming
        # detector, ...) instead of accumulating them: ``self.trace`` then
        # holds metadata only.  ``_record`` serializes sink calls under
        # ``_mutex``, so sinks need no locking of their own.
        if trace_sink is not None:
            self.trace: Trace = SinkTrace(trace_sink, program=name)
        else:
            self.trace = Trace(program=name)
        self.poll_interval = poll_interval
        #: Optional replay gate (see :class:`NativeReplayer`).
        self.gate = gate
        self.deadlocks: List[DeadlockInfo] = []
        self._mutex = _OrigLock()
        self._states: Dict[int, _ThreadState] = {}
        self._waiting: Dict[int, Tuple["InstrumentedLock", ExecIndex]] = {}
        self._abort: Set[int] = set()
        self._step = 0
        root = _ThreadState(ThreadId.root())
        self._states[threading.get_ident()] = root
        self._record(BeginEvent, thread=root.tid)

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, cls, **kw) -> None:
        with self._mutex:
            self.trace.append(cls(step=self._step, **kw))
            self._step += 1

    def _state(self) -> _ThreadState:
        ident = threading.get_ident()
        with self._mutex:
            state = self._states.get(ident)
            if state is None:
                # A thread we did not spawn (plain threading.Thread while
                # patched): register it under root with a synthetic site.
                root = ThreadId.root()
                seq = len(self._states)
                state = _ThreadState(ThreadId(root, "<native>", seq))
                self._states[ident] = state
        return state

    # -- lock factory --------------------------------------------------------------

    def new_lock(
        self, *, name: str = "", site: Optional[Site] = None, reentrant: bool = True
    ) -> "InstrumentedLock":
        if site is None:
            site = auto_site(2)
        state = self._state()
        lid = LockId(state.tid, site, state.lock_occ.next(site), name=name)
        cls = InstrumentedRLock if reentrant else InstrumentedLock
        return cls(self, lid)

    # -- threads ------------------------------------------------------------------------

    def spawn(
        self,
        target: Callable[[], None],
        *,
        name: str = "",
        site: Optional[Site] = None,
    ) -> "NativeThreadHandle":
        if site is None:
            site = auto_site(2)
        parent = self._state()
        tid = ThreadId(parent.tid, site, parent.spawn_occ.next(site), name=name)

        def runner() -> None:
            with self._mutex:
                self._states[threading.get_ident()] = _ThreadState(tid)
            self._record(BeginEvent, thread=tid)
            try:
                target()
            except DeadlockAborted:
                pass
            finally:
                self._record(EndEvent, thread=tid)

        os_thread = threading.Thread(target=runner, daemon=True, name=tid.pretty())
        self._record(SpawnEvent, thread=parent.tid, child=tid)
        os_thread.start()
        return NativeThreadHandle(self, tid, os_thread)

    # -- deadlock monitoring -----------------------------------------------------------

    def _note_waiting(self, lock: "InstrumentedLock", index: ExecIndex) -> None:
        ident = threading.get_ident()
        state = self._states[ident]
        with self._mutex:
            first = ident not in self._waiting
            self._waiting[ident] = (lock, index)
        if first:
            holder = lock.owner_tid()
            self._record(
                BlockEvent, thread=state.tid, lock=lock.lid, index=index, holder=holder
            )

    def _note_not_waiting(self) -> None:
        with self._mutex:
            self._waiting.pop(threading.get_ident(), None)

    def _should_abort(self) -> bool:
        with self._mutex:
            return threading.get_ident() in self._abort

    def check_deadlock(self) -> Optional[DeadlockInfo]:
        """Inline wait-for cycle check, run by blocked threads on each
        poll tick.  On a cycle: record it, mark every member for abort."""
        with self._mutex:
            graph = DiGraph()
            owner_idents: Dict[ThreadId, int] = {}
            for ident, state in self._states.items():
                owner_idents[state.tid] = ident
            blocked_at: Dict[ThreadId, BlockedAt] = {}
            for ident, (lock, index) in self._waiting.items():
                waiter = self._states[ident].tid
                holder = lock.owner_tid()
                blocked_at[waiter] = BlockedAt(
                    thread=waiter, lock=lock.lid, index=index, holder=holder
                )
                if holder is not None:
                    graph.add_edge(waiter, holder)
            cycle = graph.find_cycle()
            if cycle is None or not all(t in blocked_at for t in cycle):
                return None
            info = DeadlockInfo(
                cycle=[blocked_at[t] for t in cycle],
                all_blocked=list(blocked_at.values()),
            )
            self.deadlocks.append(info)
            for t in cycle:
                self._abort.add(owner_idents[t])
            return info


class NativeThreadHandle:
    def __init__(self, rt: NativeRuntime, tid: ThreadId, thread: threading.Thread):
        self._rt = rt
        self.tid = tid
        self._thread = thread

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)
        if not self._thread.is_alive():
            waiter = self._rt._state()
            self._rt._record(JoinEvent, thread=waiter.tid, target=self.tid)

    def is_alive(self) -> bool:
        return self._thread.is_alive()


class InstrumentedLock:
    """Non-reentrant instrumented mutex over ``threading.Lock``."""

    _reentrant = False

    def __init__(self, rt: NativeRuntime, lid: LockId) -> None:
        self._rt = rt
        self.lid = lid
        self._inner = _OrigLock()
        self._owner_ident: Optional[int] = None
        self._depth = 0

    def owner_tid(self) -> Optional[ThreadId]:
        ident = self._owner_ident
        if ident is None:
            return None
        state = self._rt._states.get(ident)
        return state.tid if state else None

    # -- acquire/release --------------------------------------------------------

    def acquire(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        rt = self._rt
        state = rt._state()
        index = ExecIndex(state.tid, site, state.occ.next(site))

        if self._reentrant and self._owner_ident == threading.get_ident():
            self._depth += 1
            rt._record(
                AcquireEvent,
                thread=state.tid,
                lock=self.lid,
                index=index,
                held=tuple(l.lid for l, _ in state.held),
                held_indices=tuple(ix for _, ix in state.held),
                reentrant=True,
            )
            return

        if rt.gate is not None:
            rt.gate.before_acquire(state.tid, self, index)

        blocked = False
        while not self._inner.acquire(timeout=rt.poll_interval):
            if not blocked:
                blocked = True
                rt._note_waiting(self, index)
            if rt._should_abort():
                rt._note_not_waiting()
                raise DeadlockAborted(f"{state.tid.pretty()} aborted at {site}")
            rt.check_deadlock()
        if blocked:
            rt._note_not_waiting()
        self._owner_ident = threading.get_ident()
        self._depth = 1
        rt._record(
            AcquireEvent,
            thread=state.tid,
            lock=self.lid,
            index=index,
            held=tuple(l.lid for l, _ in state.held),
            held_indices=tuple(ix for _, ix in state.held),
            reentrant=False,
        )
        state.held.append((self, index))
        if rt.gate is not None:
            rt.gate.on_acquired(state.tid, self, index)

    def release(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        rt = self._rt
        state = rt._state()
        if self._owner_ident != threading.get_ident():
            raise RuntimeError(
                f"{state.tid.pretty()} releasing {self.lid.pretty()} it does not hold"
            )
        self._depth -= 1
        reentrant = self._depth > 0
        # Record *before* freeing the OS lock: a thread blocked in
        # acquire() may otherwise grab the lock and record its
        # AcquireEvent ahead of this ReleaseEvent, leaving a trace that
        # violates mutual exclusion (flagged by the trace sanitizer).
        rt._record(
            ReleaseEvent, thread=state.tid, lock=self.lid, site=site, reentrant=reentrant
        )
        if not reentrant:
            self._owner_ident = None
            for i in range(len(state.held) - 1, -1, -1):
                if state.held[i][0] is self:
                    del state.held[i]
                    break
            self._inner.release()

    def at(self, site: Site):
        return _Region(self, site)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire(site=auto_site(2))
        return self

    def __exit__(self, *exc) -> None:
        self.release(site=auto_site(2))


class InstrumentedRLock(InstrumentedLock):
    """Reentrant instrumented monitor (Java-style)."""

    _reentrant = True


class _Region:
    __slots__ = ("_lock", "_site")

    def __init__(self, lock: InstrumentedLock, site: Site) -> None:
        self._lock = lock
        self._site = site

    def __enter__(self):
        self._lock.acquire(site=self._site)
        return self._lock

    def __exit__(self, *exc) -> None:
        self._lock.release(site=self._site)


@contextlib.contextmanager
def patch_threading(rt: NativeRuntime):
    """Swap ``threading.Lock``/``RLock`` for instrumented constructors.

    Code that merely calls ``threading.Lock()`` gets traced without any
    modification — the paper's bytecode-instrumentation effect.  Only the
    constructors are patched; existing lock objects are untouched.
    """
    orig_lock, orig_rlock = threading.Lock, threading.RLock
    counter = {"n": 0}

    def make_lock():
        counter["n"] += 1
        return rt.new_lock(name=f"patched#{counter['n']}", reentrant=False)

    def make_rlock():
        counter["n"] += 1
        return rt.new_lock(name=f"patched#{counter['n']}", reentrant=True)

    threading.Lock = make_lock  # type: ignore[misc]
    threading.RLock = make_rlock  # type: ignore[misc]
    try:
        yield rt
    finally:
        threading.Lock = orig_lock  # type: ignore[misc]
        threading.RLock = orig_rlock  # type: ignore[misc]
