"""Instrumentation for *real* ``threading`` code (the monkeypatch path).

The simulated runtime gives WOLF deterministic schedules; this package
shows the same trace model working on ordinary Python threads, the way
the paper's Soot instrumentation wraps ordinary Java threads:

* :class:`InstrumentedLock` / :class:`InstrumentedRLock` wrap the real
  primitives, record :class:`~repro.runtime.events.Trace` events and
  poll with timeouts so a watchdog can observe (and break) deadlocks;
* :class:`NativeRuntime` manages thread registration, deterministic
  identities, and the wait-for graph;
* :func:`patch_threading` temporarily swaps ``threading.Lock``/``RLock``
  for instrumented constructors, so unmodified code gets traced;
* :class:`NativeReplayer` drives real threads toward a WOLF
  synchronization dependency graph by gating instrumented acquisitions.

Real-thread schedules are OS-controlled, so detection here is
best-effort (exactly like running the paper's tool on a real JVM): traces
vary run to run, and the deadlock monitor recovers the process by
aborting the deadlocked threads.
"""

from repro.runtime.nativert.runtime import (
    DeadlockAborted,
    InstrumentedLock,
    InstrumentedRLock,
    NativeRuntime,
    patch_threading,
)
from repro.runtime.nativert.replay import NativeReplayer

__all__ = [
    "DeadlockAborted",
    "InstrumentedLock",
    "InstrumentedRLock",
    "NativeReplayer",
    "NativeRuntime",
    "patch_threading",
]
