"""Compact binary trace files with streaming read/write (``.wtrc``).

:mod:`repro.runtime.serialize` is the human-oriented JSON interchange
format; this module is the machine format for traces that should never be
materialized whole: a production recorder appends events to disk with
memory bounded by the identity tables, and the streaming engine
(:mod:`repro.core.streaming`) consumes the file one event at a time.

Layout::

    magic "WTRC" + version byte
    chunk*          chunk := kind:u8, payload_len:uvarint, payload
    kinds: 0 META    program string, seed (zigzag varint)
           1 STRINGS n, then n x (len + utf8)   -- sites/names/conditions
           2 THREADS n, then n x (parent+1, spawn_site*, seq, name*)
           3 LOCKS   n, then n x (owner, create_site*, seq, name*)
           4 EVENTS  n, then n x event
           5 END     total event count

(``*`` = index into the string table; all integers are unsigned LEB128
varints, signed values zigzag-encoded.)  Identity rows are interned on
first use and emitted in table chunks *before* the event chunk that
references them, so a reader's tables are always resolvable after a
strictly sequential scan; recursive :class:`~repro.util.ids.ThreadId`
parent chains work because a parent is interned (and its row queued)
before any child that references it.  Event steps are delta-encoded
against the previous event.

An event::

    kind:u8, step_delta:zigzag, thread, fields...

with per-kind fields mirroring :mod:`repro.runtime.serialize` exactly —
the round trip is lossless, including ``held_indices``, ``stack_depth``
and ``BlockEvent.holder = None``.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import BinaryIO, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    BlockEvent,
    EndEvent,
    JoinEvent,
    NotifyEvent,
    ReleaseEvent,
    SpawnEvent,
    Trace,
    TraceEvent,
    WaitEvent,
)
from repro.util.ids import ExecIndex, LockId, ThreadId

MAGIC = b"WTRC"
FORMAT_VERSION = 1

# Chunk kinds.
_META, _STRINGS, _THREADS, _LOCKS, _EVENTS, _END = range(6)

# Event kinds (wire tags).
_EV_CLASSES: Tuple[type, ...] = (
    BeginEvent,
    EndEvent,
    SpawnEvent,
    JoinEvent,
    AcquireEvent,
    ReleaseEvent,
    WaitEvent,
    NotifyEvent,
    BlockEvent,
)
_EV_TAG: Dict[type, int] = {cls: i for i, cls in enumerate(_EV_CLASSES)}

PathOrIO = Union[str, "os.PathLike[str]", BinaryIO]


@dataclass(frozen=True)
class ChunkSpan:
    """Address of one EVENTS chunk, for selective decoding.

    Spans are recorded by :class:`TraceFileWriter` as chunks are flushed
    and by :class:`TraceFileReader` as chunks are decoded (seekable
    sources only).  ``base_step`` is the step of the last event *before*
    the chunk: steps are delta-encoded across chunk boundaries, so a
    reader jumping straight to this chunk must seed its step accumulator
    with it.  Since trace steps increase monotonically, the chunk holds
    exactly the events with steps in ``(base_step, last_step]`` — which
    is what :meth:`TraceFileReader.iter_events_in` and the sharded
    enumeration's zero-copy hand-off use to pick chunks by step.
    """

    #: absolute file offset of the chunk header (kind byte)
    offset: int
    #: payload byte length
    length: int
    #: step of the event immediately preceding this chunk (delta base)
    base_step: int
    #: step of this chunk's final event
    last_step: int
    #: number of events in the chunk
    events: int


# ---------------------------------------------------------------------------
# varint primitives
# ---------------------------------------------------------------------------


def _put_uvarint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _put_svarint(buf: bytearray, n: int) -> None:
    _put_uvarint(buf, n * 2 if n >= 0 else -n * 2 - 1)


def _get_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


def _get_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    zz, pos = _get_uvarint(data, pos)
    return (zz >> 1) ^ -(zz & 1), pos


def _read_uvarint_io(fh: BinaryIO) -> Optional[int]:
    """Read one uvarint straight off a file; ``None`` at clean EOF."""
    result = 0
    shift = 0
    while True:
        byte = fh.read(1)
        if not byte:
            if shift:
                raise ValueError("truncated varint in trace file")
            return None
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class TraceFileWriter:
    """Append events to a binary trace file with bounded memory.

    Memory grows with the *identity tables* (distinct threads, locks and
    strings), never with the event count: encoded events are buffered only
    up to ``events_per_chunk`` and then flushed.  Accepts a path (opened
    and owned) or a writable binary file object (caller keeps ownership).
    Usable as a context manager; :meth:`close` seals the file with an END
    chunk carrying the total event count, while :meth:`abort` flushes the
    buffered chunks as crash evidence and deliberately leaves the file
    *unsealed* (no END chunk) so downstream torn-trace detection stays
    trustworthy.  The context manager routes exceptional exits through
    ``abort()``: a producer that dies mid-trace must never look complete.
    Owned files are fsynced on both paths before the descriptor is
    released.
    """

    def __init__(
        self,
        dest: PathOrIO,
        *,
        program: str = "",
        seed: int = 0,
        events_per_chunk: int = 1024,
    ) -> None:
        if events_per_chunk < 1:
            raise ValueError(f"events_per_chunk must be >= 1, got {events_per_chunk}")
        if isinstance(dest, (str, os.PathLike)):
            self._fh: BinaryIO = open(dest, "wb")
            self._owns = True
        else:
            self._fh = dest
            self._owns = False
        self.program = program
        self.seed = seed
        self.events_written = 0
        self._chunk_limit = events_per_chunk
        self._closed = False
        #: True once :meth:`abort` ran — the file is torn by design.
        self.aborted = False
        # Interners (identity -> table index) and their pending wire rows.
        self._strings: Dict[str, int] = {}
        self._threads: Dict[ThreadId, int] = {}
        self._locks: Dict[LockId, int] = {}
        self._pending_strings: List[str] = []
        self._pending_threads = bytearray()
        self._pending_thread_rows = 0
        self._pending_locks = bytearray()
        self._pending_lock_rows = 0
        self._ev_buf = bytearray()
        self._ev_count = 0
        self._last_step = 0
        #: Spans of the EVENTS chunks written so far (empty when the
        #: destination is not tellable) — the writer-side half of the
        #: zero-copy hand-off: record to disk, then ship spans to workers.
        self.event_spans: List[ChunkSpan] = []
        self._chunk_base_step = 0

        self._fh.write(MAGIC + bytes([FORMAT_VERSION]))
        meta = bytearray()
        raw = program.encode("utf-8")
        _put_uvarint(meta, len(raw))
        meta += raw
        _put_svarint(meta, seed)
        self._write_chunk(_META, meta)

    # -- interning ----------------------------------------------------------

    def _string(self, s: str) -> int:
        idx = self._strings.get(s)
        if idx is None:
            idx = len(self._strings)
            self._strings[s] = idx
            self._pending_strings.append(s)
        return idx

    def _thread(self, tid: ThreadId) -> int:
        idx = self._threads.get(tid)
        if idx is not None:
            return idx
        parent = self._thread(tid.parent) + 1 if tid.parent is not None else 0
        spawn_site = self._string(tid.spawn_site)
        name = self._string(tid.name)
        # Index assigned *after* the parent's so rows land in resolvable
        # order; the row is encoded now, against already-assigned refs.
        idx = len(self._threads)
        self._threads[tid] = idx
        row = self._pending_threads
        _put_uvarint(row, parent)
        _put_uvarint(row, spawn_site)
        _put_uvarint(row, tid.seq)
        _put_uvarint(row, name)
        self._pending_thread_rows += 1
        return idx

    def _lock(self, lid: LockId) -> int:
        idx = self._locks.get(lid)
        if idx is not None:
            return idx
        owner = self._thread(lid.owner)
        create_site = self._string(lid.create_site)
        name = self._string(lid.name)
        idx = len(self._locks)
        self._locks[lid] = idx
        row = self._pending_locks
        _put_uvarint(row, owner)
        _put_uvarint(row, create_site)
        _put_uvarint(row, lid.seq)
        _put_uvarint(row, name)
        self._pending_lock_rows += 1
        return idx

    def _index(self, buf: bytearray, ix: ExecIndex) -> None:
        _put_uvarint(buf, self._thread(ix.thread))
        _put_uvarint(buf, self._string(ix.site))
        _put_uvarint(buf, ix.occ)

    # -- events -------------------------------------------------------------

    def write_event(self, ev: TraceEvent) -> None:
        if self._closed:
            raise ValueError("trace file writer is closed")
        buf = self._ev_buf
        if self._ev_count == 0:
            self._chunk_base_step = self._last_step
        buf.append(_EV_TAG[type(ev)])
        _put_svarint(buf, ev.step - self._last_step)
        self._last_step = ev.step
        _put_uvarint(buf, self._thread(ev.thread))
        if isinstance(ev, AcquireEvent):
            _put_uvarint(buf, self._lock(ev.lock))
            self._index(buf, ev.index)
            _put_uvarint(buf, len(ev.held))
            for l in ev.held:
                _put_uvarint(buf, self._lock(l))
            for ix in ev.held_indices:
                self._index(buf, ix)
            buf.append(1 if ev.reentrant else 0)
            _put_uvarint(buf, ev.stack_depth)
        elif isinstance(ev, ReleaseEvent):
            _put_uvarint(buf, self._lock(ev.lock))
            _put_uvarint(buf, self._string(ev.site))
            buf.append(1 if ev.reentrant else 0)
        elif isinstance(ev, SpawnEvent):
            _put_uvarint(buf, self._thread(ev.child))
        elif isinstance(ev, JoinEvent):
            _put_uvarint(buf, self._thread(ev.target))
        elif isinstance(ev, WaitEvent):
            _put_uvarint(buf, self._string(ev.condition))
            _put_uvarint(buf, self._lock(ev.lock))
            _put_uvarint(buf, self._string(ev.site))
        elif isinstance(ev, NotifyEvent):
            _put_uvarint(buf, self._string(ev.condition))
            _put_uvarint(buf, self._lock(ev.lock))
            _put_uvarint(buf, self._string(ev.site))
            _put_uvarint(buf, ev.woken)
            buf.append(1 if ev.notify_all else 0)
        elif isinstance(ev, BlockEvent):
            _put_uvarint(buf, self._lock(ev.lock))
            self._index(buf, ev.index)
            _put_uvarint(
                buf, self._thread(ev.holder) + 1 if ev.holder is not None else 0
            )
        self._ev_count += 1
        self.events_written += 1
        if self._ev_count >= self._chunk_limit:
            self._flush()

    #: Sink-protocol alias (see :class:`repro.runtime.events.SinkTrace`).
    __call__ = write_event

    # -- chunk output -------------------------------------------------------

    def _write_chunk(self, kind: int, payload: Union[bytes, bytearray]) -> None:
        head = bytearray([kind])
        _put_uvarint(head, len(payload))
        self._fh.write(bytes(head) + bytes(payload))

    def _flush(self) -> None:
        if self._pending_strings:
            payload = bytearray()
            _put_uvarint(payload, len(self._pending_strings))
            for s in self._pending_strings:
                raw = s.encode("utf-8")
                _put_uvarint(payload, len(raw))
                payload += raw
            self._write_chunk(_STRINGS, payload)
            self._pending_strings = []
        if self._pending_thread_rows:
            payload = bytearray()
            _put_uvarint(payload, self._pending_thread_rows)
            payload += self._pending_threads
            self._write_chunk(_THREADS, payload)
            self._pending_threads = bytearray()
            self._pending_thread_rows = 0
        if self._pending_lock_rows:
            payload = bytearray()
            _put_uvarint(payload, self._pending_lock_rows)
            payload += self._pending_locks
            self._write_chunk(_LOCKS, payload)
            self._pending_locks = bytearray()
            self._pending_lock_rows = 0
        if self._ev_count:
            payload = bytearray()
            _put_uvarint(payload, self._ev_count)
            payload += self._ev_buf
            offset = self._tell()
            self._write_chunk(_EVENTS, payload)
            if offset is not None:
                self.event_spans.append(
                    ChunkSpan(
                        offset=offset,
                        length=len(payload),
                        base_step=self._chunk_base_step,
                        last_step=self._last_step,
                        events=self._ev_count,
                    )
                )
            self._ev_buf = bytearray()
            self._ev_count = 0

    def _tell(self) -> Optional[int]:
        try:
            return self._fh.tell()
        except (OSError, io.UnsupportedOperation):
            return None

    def close(self) -> None:
        if self._closed:
            return
        self._flush()
        end = bytearray()
        _put_uvarint(end, self.events_written)
        self._write_chunk(_END, end)
        self._closed = True
        self._sync_and_release()

    def abort(self) -> None:
        """Stop writing WITHOUT sealing the file.

        Buffered chunks are flushed (the partial trace is evidence worth
        keeping) but no END chunk is written, so every reader — the
        corpus validator, the ingestion daemon, ``trace info`` — sees the
        file for what it is: torn.  Idempotent; a no-op after ``close``.
        """
        if self._closed:
            return
        self._flush()
        self._closed = True
        self.aborted = True
        self._sync_and_release()

    def _sync_and_release(self) -> None:
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except (OSError, ValueError, io.UnsupportedOperation, AttributeError):
            pass  # non-file destinations (BytesIO, sockets) have no fsync
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception unwinding through the block means the producer died
        # mid-trace: leave the file torn instead of forging completeness.
        if exc_type is not None:
            self.abort()
        else:
            self.close()


# ---------------------------------------------------------------------------
# shared decode core (tables + event decoding)
# ---------------------------------------------------------------------------


class _DecodeCore:
    """Identity tables plus chunk-payload decoding, shared by the file
    reader (pull) and the incremental :class:`ChunkDecoder` (push)."""

    def _init_decode_state(self) -> None:
        self._strings: List[str] = []
        self._threads: List[ThreadId] = []
        self._locks: List[LockId] = []
        self._last_step = 0
        self.events_read = 0
        #: END-chunk event count (``None`` until the END chunk is reached —
        #: a missing END chunk means the writer died mid-trace).
        self.declared_events: Optional[int] = None
        self.program = ""
        self.seed = 0

    def _load_meta(self, payload: bytes) -> None:
        n, pos = _get_uvarint(payload, 0)
        self.program = payload[pos : pos + n].decode("utf-8")
        self.seed, _ = _get_svarint(payload, pos + n)

    def _load_end(self, payload: bytes) -> None:
        self.declared_events, _ = _get_uvarint(payload, 0)
        if self.declared_events != self.events_read:
            raise ValueError(
                f"trace file declares {self.declared_events} events "
                f"but {self.events_read} were decoded"
            )

    def _load_strings(self, payload: bytes) -> None:
        n, pos = _get_uvarint(payload, 0)
        for _ in range(n):
            ln, pos = _get_uvarint(payload, pos)
            self._strings.append(payload[pos : pos + ln].decode("utf-8"))
            pos += ln

    def _load_threads(self, payload: bytes) -> None:
        n, pos = _get_uvarint(payload, 0)
        for _ in range(n):
            parent, pos = _get_uvarint(payload, pos)
            spawn_site, pos = _get_uvarint(payload, pos)
            seq, pos = _get_uvarint(payload, pos)
            name, pos = _get_uvarint(payload, pos)
            self._threads.append(
                ThreadId(
                    self._threads[parent - 1] if parent else None,
                    self._strings[spawn_site],
                    seq,
                    name=self._strings[name],
                )
            )

    def _load_locks(self, payload: bytes) -> None:
        n, pos = _get_uvarint(payload, 0)
        for _ in range(n):
            owner, pos = _get_uvarint(payload, pos)
            create_site, pos = _get_uvarint(payload, pos)
            seq, pos = _get_uvarint(payload, pos)
            name, pos = _get_uvarint(payload, pos)
            self._locks.append(
                LockId(
                    self._threads[owner],
                    self._strings[create_site],
                    seq,
                    name=self._strings[name],
                )
            )

    # -- event decoding ------------------------------------------------------

    def _decode_events(self, payload: bytes) -> Iterator[TraceEvent]:
        uvarint, svarint = _get_uvarint, _get_svarint
        strings, threads, locks = self._strings, self._threads, self._locks
        n, pos = uvarint(payload, 0)
        step = self._last_step
        for _ in range(n):
            tag = payload[pos]
            delta, pos = svarint(payload, pos + 1)
            step += delta
            t, pos = uvarint(payload, pos)
            thread = threads[t]
            if tag == 4:  # AcquireEvent (hottest first)
                lk, pos = uvarint(payload, pos)
                it, pos = uvarint(payload, pos)
                isite, pos = uvarint(payload, pos)
                occ, pos = uvarint(payload, pos)
                nheld, pos = uvarint(payload, pos)
                held = []
                for _h in range(nheld):
                    h, pos = uvarint(payload, pos)
                    held.append(locks[h])
                held_indices = []
                for _h in range(nheld):
                    ht, pos = uvarint(payload, pos)
                    hs, pos = uvarint(payload, pos)
                    ho, pos = uvarint(payload, pos)
                    held_indices.append(
                        ExecIndex(threads[ht], strings[hs], ho)
                    )
                reentrant = payload[pos] == 1
                depth, pos = uvarint(payload, pos + 1)
                ev: TraceEvent = AcquireEvent(
                    step,
                    thread,
                    lock=locks[lk],
                    index=ExecIndex(threads[it], strings[isite], occ),
                    held=tuple(held),
                    held_indices=tuple(held_indices),
                    reentrant=reentrant,
                    stack_depth=depth,
                )
            elif tag == 5:  # ReleaseEvent
                lk, pos = uvarint(payload, pos)
                site, pos = uvarint(payload, pos)
                reentrant = payload[pos] == 1
                pos += 1
                ev = ReleaseEvent(
                    step,
                    thread,
                    lock=locks[lk],
                    site=strings[site],
                    reentrant=reentrant,
                )
            elif tag == 0:
                ev = BeginEvent(step, thread)
            elif tag == 1:
                ev = EndEvent(step, thread)
            elif tag == 2:
                c, pos = uvarint(payload, pos)
                ev = SpawnEvent(step, thread, child=threads[c])
            elif tag == 3:
                tgt, pos = uvarint(payload, pos)
                ev = JoinEvent(step, thread, target=threads[tgt])
            elif tag == 6:
                cond, pos = uvarint(payload, pos)
                lk, pos = uvarint(payload, pos)
                site, pos = uvarint(payload, pos)
                ev = WaitEvent(
                    step,
                    thread,
                    condition=strings[cond],
                    lock=locks[lk],
                    site=strings[site],
                )
            elif tag == 7:
                cond, pos = uvarint(payload, pos)
                lk, pos = uvarint(payload, pos)
                site, pos = uvarint(payload, pos)
                woken, pos = uvarint(payload, pos)
                notify_all = payload[pos] == 1
                pos += 1
                ev = NotifyEvent(
                    step,
                    thread,
                    condition=strings[cond],
                    lock=locks[lk],
                    site=strings[site],
                    woken=woken,
                    notify_all=notify_all,
                )
            elif tag == 8:
                lk, pos = uvarint(payload, pos)
                it, pos = uvarint(payload, pos)
                isite, pos = uvarint(payload, pos)
                occ, pos = uvarint(payload, pos)
                holder, pos = uvarint(payload, pos)
                ev = BlockEvent(
                    step,
                    thread,
                    lock=locks[lk],
                    index=ExecIndex(threads[it], strings[isite], occ),
                    holder=threads[holder - 1] if holder else None,
                )
            else:
                raise ValueError(f"unknown event tag {tag}")
            self.events_read += 1
            yield ev
        self._last_step = step

    def _decode_events_fast(self, payload: bytes) -> Iterator[TraceEvent]:
        """The mmap fast path: :meth:`_decode_events` with the one-byte
        varint case inlined (multi-byte values fall back to the shared
        helpers, so decoded values and error behavior are identical —
        the vast majority of fields are single-byte table indices and
        small step deltas, and skipping a function call plus a tuple
        allocation for each of them is where the analyze speedup of the
        ``mmap=True`` reader mode comes from)."""
        uvarint, svarint = _get_uvarint, _get_svarint
        strings, threads, locks = self._strings, self._threads, self._locks
        new = object.__new__
        n, pos = uvarint(payload, 0)
        step = self._last_step
        for _ in range(n):
            tag = payload[pos]
            pos += 1
            b = payload[pos]
            if b < 0x80:
                pos += 1
                step += (b >> 1) ^ -(b & 1)
            else:
                delta, pos = svarint(payload, pos)
                step += delta
            b = payload[pos]
            if b < 0x80:
                t = b
                pos += 1
            else:
                t, pos = uvarint(payload, pos)
            thread = threads[t]
            if tag == 4:  # AcquireEvent (hottest first)
                b = payload[pos]
                if b < 0x80:
                    lk = b
                    pos += 1
                else:
                    lk, pos = uvarint(payload, pos)
                b = payload[pos]
                if b < 0x80:
                    it = b
                    pos += 1
                else:
                    it, pos = uvarint(payload, pos)
                b = payload[pos]
                if b < 0x80:
                    isite = b
                    pos += 1
                else:
                    isite, pos = uvarint(payload, pos)
                b = payload[pos]
                if b < 0x80:
                    occ = b
                    pos += 1
                else:
                    occ, pos = uvarint(payload, pos)
                b = payload[pos]
                if b < 0x80:
                    nheld = b
                    pos += 1
                else:
                    nheld, pos = uvarint(payload, pos)
                if nheld:
                    held = []
                    for _h in range(nheld):
                        b = payload[pos]
                        if b < 0x80:
                            h = b
                            pos += 1
                        else:
                            h, pos = uvarint(payload, pos)
                        held.append(locks[h])
                    held_indices = []
                    for _h in range(nheld):
                        b = payload[pos]
                        if b < 0x80:
                            ht = b
                            pos += 1
                        else:
                            ht, pos = uvarint(payload, pos)
                        b = payload[pos]
                        if b < 0x80:
                            hs = b
                            pos += 1
                        else:
                            hs, pos = uvarint(payload, pos)
                        b = payload[pos]
                        if b < 0x80:
                            ho = b
                            pos += 1
                        else:
                            ho, pos = uvarint(payload, pos)
                        held_indices.append(
                            ExecIndex(threads[ht], strings[hs], ho)
                        )
                else:
                    held = held_indices = ()
                reentrant = payload[pos] == 1
                b = payload[pos + 1]
                if b < 0x80:
                    depth = b
                    pos += 2
                else:
                    depth, pos = uvarint(payload, pos + 1)
                # Frozen-dataclass construction funnels every field
                # through object.__setattr__; building the instance dict
                # directly produces an equal object (same fields, eq,
                # hash, repr) without that per-field ceremony.  Field
                # values are evaluated in constructor-argument order so
                # table-index errors surface exactly as in the slow path.
                index = new(ExecIndex)
                index.__dict__.update(
                    thread=threads[it], site=strings[isite], occ=occ
                )
                ev: TraceEvent = new(AcquireEvent)
                ev.__dict__.update(
                    step=step,
                    thread=thread,
                    lock=locks[lk],
                    index=index,
                    held=tuple(held),
                    held_indices=tuple(held_indices),
                    reentrant=reentrant,
                    stack_depth=depth,
                )
                self.events_read += 1
                yield ev
                continue
            if tag == 5:  # ReleaseEvent
                b = payload[pos]
                if b < 0x80:
                    lk = b
                    pos += 1
                else:
                    lk, pos = uvarint(payload, pos)
                b = payload[pos]
                if b < 0x80:
                    site = b
                    pos += 1
                else:
                    site, pos = uvarint(payload, pos)
                reentrant = payload[pos] == 1
                pos += 1
                ev = new(ReleaseEvent)
                ev.__dict__.update(
                    step=step,
                    thread=thread,
                    lock=locks[lk],
                    site=strings[site],
                    reentrant=reentrant,
                )
            elif tag == 0:
                ev = BeginEvent(step, thread)
            elif tag == 1:
                ev = EndEvent(step, thread)
            elif tag == 2:
                c, pos = uvarint(payload, pos)
                ev = SpawnEvent(step, thread, child=threads[c])
            elif tag == 3:
                tgt, pos = uvarint(payload, pos)
                ev = JoinEvent(step, thread, target=threads[tgt])
            elif tag == 6:
                cond, pos = uvarint(payload, pos)
                lk, pos = uvarint(payload, pos)
                site, pos = uvarint(payload, pos)
                ev = WaitEvent(
                    step,
                    thread,
                    condition=strings[cond],
                    lock=locks[lk],
                    site=strings[site],
                )
            elif tag == 7:
                cond, pos = uvarint(payload, pos)
                lk, pos = uvarint(payload, pos)
                site, pos = uvarint(payload, pos)
                woken, pos = uvarint(payload, pos)
                notify_all = payload[pos] == 1
                pos += 1
                ev = NotifyEvent(
                    step,
                    thread,
                    condition=strings[cond],
                    lock=locks[lk],
                    site=strings[site],
                    woken=woken,
                    notify_all=notify_all,
                )
            elif tag == 8:
                lk, pos = uvarint(payload, pos)
                it, pos = uvarint(payload, pos)
                isite, pos = uvarint(payload, pos)
                occ, pos = uvarint(payload, pos)
                holder, pos = uvarint(payload, pos)
                ev = BlockEvent(
                    step,
                    thread,
                    lock=locks[lk],
                    index=ExecIndex(threads[it], strings[isite], occ),
                    holder=threads[holder - 1] if holder else None,
                )
            else:
                raise ValueError(f"unknown event tag {tag}")
            self.events_read += 1
            yield ev
        self._last_step = step


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class TraceFileReader(_DecodeCore):
    """Sequential event iterator over a binary trace file.

    Decodes one chunk at a time: peak memory is the identity tables plus a
    single chunk, independent of the trace length.  Accepts a path (opened
    and owned) or a readable binary file object.

    ``mmap=True`` maps the file and serves chunk payloads as slices of the
    page cache instead of buffered ``read()`` calls — no syscalls or seeks
    on the hot path — and switches event decoding to the inlined-varint
    fast loop (:meth:`_decode_events_fast`).  Decoded output and every
    error (type and message) are identical to the default mode; sources
    that cannot be mapped (pipes, ``BytesIO``, empty files) silently fall
    back to plain reads.
    """

    def __init__(self, src: PathOrIO, *, mmap: bool = False) -> None:
        if isinstance(src, (str, os.PathLike)):
            self._fh: BinaryIO = open(src, "rb")
            self._owns = True
        else:
            self._fh = src
            self._owns = False
        self._mm = None
        self._pos = 0
        if mmap:
            import mmap as _mmap

            try:
                self._mm = _mmap.mmap(
                    self._fh.fileno(), 0, access=_mmap.ACCESS_READ
                )
            except (OSError, ValueError, io.UnsupportedOperation, AttributeError):
                self._mm = None  # unmappable source: plain reads
        #: Per-chunk event decoder; the mmap fast path swaps in the
        #: inlined-varint loop, the native backend swaps in its kernel
        #: feed.  Both produce identical results/errors by contract.
        self._decode = (
            self._decode_events_fast if self._mm is not None else self._decode_events
        )
        #: When set (native backend) EVENTS payloads are served as
        #: memoryviews straight into the map — zero-copy from page cache
        #: to the kernel; table chunks stay bytes (they are decoded in
        #: Python either way).
        self._events_view = False
        header = self._read_bytes(len(MAGIC) + 1)
        if header[: len(MAGIC)] != MAGIC:
            raise ValueError("not a WOLF binary trace file (bad magic)")
        version = header[len(MAGIC)]
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace file version {version}")
        self._init_decode_state()
        #: Spans of the EVENTS chunks decoded so far (empty for
        #: non-tellable sources) — lets a full sequential pass double as
        #: the index a later selective pass (:meth:`iter_events_in`) or a
        #: zero-copy worker hand-off needs.
        self.event_spans: List[ChunkSpan] = []
        self._chunk_offset: Optional[int] = None
        kind, payload = self._next_chunk(required=True)
        if kind != _META:
            raise ValueError("trace file must start with a META chunk")
        self._load_meta(payload)

    # -- chunk plumbing ------------------------------------------------------

    def _tell(self) -> Optional[int]:
        if self._mm is not None:
            return self._pos
        try:
            return self._fh.tell()
        except (OSError, io.UnsupportedOperation):
            return None

    def _read_bytes(self, n: int) -> bytes:
        """Up to ``n`` bytes from the current position (short at EOF)."""
        if self._mm is not None:
            data = self._mm[self._pos : self._pos + n]
            self._pos += len(data)
            return data
        return self._fh.read(n)

    def _skip_bytes(self, n: int) -> None:
        if self._mm is not None:
            self._pos += n
        else:
            self._fh.seek(n, os.SEEK_CUR)

    def _read_uvarint_stream(self) -> Optional[int]:
        """Uvarint at the cursor; ``None`` at clean EOF (same contract and
        errors as :func:`_read_uvarint_io`)."""
        if self._mm is None:
            return _read_uvarint_io(self._fh)
        mm, pos, size = self._mm, self._pos, len(self._mm)
        result = 0
        shift = 0
        while pos < size:
            b = mm[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                self._pos = pos
                return result
            shift += 7
        self._pos = pos
        if shift:
            raise ValueError("truncated varint in trace file")
        return None

    def _next_chunk(self, required: bool = False) -> Tuple[int, bytes]:
        self._chunk_offset = self._tell()
        kind_b = self._read_bytes(1)
        if not kind_b:
            if required:
                raise ValueError("truncated trace file")
            return -1, b""
        length = self._read_uvarint_stream()
        if length is None:
            raise ValueError("truncated trace file (chunk header)")
        if self._events_view and self._mm is not None and kind_b[0] == _EVENTS:
            start = self._pos
            end = start + length
            if end > len(self._mm):
                # Checked before exporting a view: a short slice pinned in
                # the exception traceback would block mmap.close().
                self._pos = len(self._mm)
                raise ValueError("truncated trace file (chunk payload)")
            self._pos = end
            payload: Union[bytes, memoryview] = memoryview(self._mm)[start:end]
        else:
            payload = self._read_bytes(length)
        if len(payload) != length:
            raise ValueError("truncated trace file (chunk payload)")
        return kind_b[0], payload

    def __iter__(self) -> Iterator[TraceEvent]:
        while True:
            kind, payload = self._next_chunk()
            if kind == -1:
                return
            if kind == _STRINGS:
                self._load_strings(payload)
            elif kind == _THREADS:
                self._load_threads(payload)
            elif kind == _LOCKS:
                self._load_locks(payload)
            elif kind == _EVENTS:
                offset = self._chunk_offset
                base_step = self._last_step
                events_before = self.events_read
                yield from self._decode(payload)
                if offset is not None:
                    self.event_spans.append(
                        ChunkSpan(
                            offset=offset,
                            length=len(payload),
                            base_step=base_step,
                            last_step=self._last_step,
                            events=self.events_read - events_before,
                        )
                    )
            elif kind == _END:
                self._load_end(payload)
                return
            elif kind == _META:
                raise ValueError("duplicate META chunk")
            else:
                raise ValueError(f"unknown chunk kind {kind}")

    def iter_events_in(self, spans: Sequence[ChunkSpan]) -> Iterator[TraceEvent]:
        """Decode only the EVENTS chunks named by ``spans``.

        The zero-copy worker path: identity-table chunks are always
        processed (they are tiny and later chunks reference them), but
        EVENTS chunks not in ``spans`` are seeked past undecoded, and
        each selected chunk's step accumulator is seeded from its span's
        ``base_step``.  Must be called on a freshly opened reader over a
        seekable source.  The END completeness check is skipped —
        deliberately decoding a subset is the point.
        """
        wanted = {s.offset: s for s in spans}
        while True:
            offset = self._tell()
            kind_b = self._read_bytes(1)
            if not kind_b:
                return
            kind = kind_b[0]
            length = self._read_uvarint_stream()
            if length is None:
                raise ValueError("truncated trace file (chunk header)")
            if kind == _EVENTS and offset not in wanted:
                self._skip_bytes(length)
                continue
            payload = self._read_bytes(length)
            if len(payload) != length:
                raise ValueError("truncated trace file (chunk payload)")
            if kind == _EVENTS:
                self._last_step = wanted[offset].base_step
                yield from self._decode(payload)
            elif kind == _STRINGS:
                self._load_strings(payload)
            elif kind == _THREADS:
                self._load_threads(payload)
            elif kind == _LOCKS:
                self._load_locks(payload)
            elif kind == _END:
                return
            elif kind == _META:
                raise ValueError("duplicate META chunk")
            else:
                raise ValueError(f"unknown chunk kind {kind}")

    def read_trace(self) -> Trace:
        """Materialize the remaining stream as an in-memory :class:`Trace`."""
        trace = Trace(program=self.program, seed=self.seed)
        for ev in self:
            trace.append(ev)
        return trace

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # A chunk view is still exported — typically pinned by the
                # traceback of a decode error propagating through
                # ``__exit__``.  Leave the map to the GC instead of
                # masking the original exception with a BufferError.
                pass
            self._mm = None
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# incremental push decoder (network ingestion)
# ---------------------------------------------------------------------------


class OversizedChunkError(ValueError):
    """A chunk declares a payload beyond the configured ceiling.

    Raised *from the header alone*, before any payload bytes are
    buffered — the defense that keeps a hostile producer from making the
    decoder allocate its declared (arbitrarily large) chunk.
    """


def _try_uvarint(buf: bytearray, pos: int) -> Optional[Tuple[int, int]]:
    """Decode one uvarint from ``buf[pos:]`` or ``None`` if incomplete."""
    result = 0
    shift = 0
    while pos < len(buf):
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
    return None


class ChunkDecoder(_DecodeCore):
    """Incremental ``.wtrc`` decoder for bytes arriving in arbitrary slices.

    The ingestion daemon's workhorse: a producer streams a trace file over
    a socket in whatever frame sizes it likes, and each :meth:`push`
    returns the events of every chunk that is now complete — identity
    tables resolve exactly as in the sequential reader because chunks are
    processed in stream order.  State the daemon's journal and flow
    control need is exposed as it advances:

    ``bytes_consumed``
        absolute stream offset of the last fully-decoded chunk boundary —
        the resume point a crash-recovery journal records (re-feeding the
        first ``bytes_consumed`` bytes reproduces this decoder's state
        exactly);
    ``buffered``
        bytes received but not yet attributable to a complete chunk (the
        partial-chunk residue counted against backpressure budgets);
    ``complete``
        whether the END seal arrived and matched.

    ``max_chunk_bytes`` bounds any single chunk's declared payload;
    violation raises :class:`OversizedChunkError` before the payload is
    buffered.  All other corruption surfaces exactly as
    :class:`TraceFileReader` would raise it (``ValueError`` for framing,
    ``IndexError``/``KeyError``/``UnicodeDecodeError`` for bit rot inside
    payloads), so one taxonomy classifies both batch and streaming
    ingestion.
    """

    def __init__(self, *, max_chunk_bytes: Optional[int] = None) -> None:
        if max_chunk_bytes is not None and max_chunk_bytes < 1:
            raise ValueError(f"max_chunk_bytes must be >= 1, got {max_chunk_bytes}")
        self._init_decode_state()
        self.max_chunk_bytes = max_chunk_bytes
        self._buf = bytearray()
        #: absolute offset of ``_buf[0]`` in the whole stream
        self._base = 0
        self._header_done = False
        self._meta_done = False
        self.complete = False
        #: Spans of every decoded EVENTS chunk, offsets relative to the
        #: stream start — identical to what :class:`TraceFileReader` would
        #: record over the same bytes, so they address the daemon's spool
        #: file for the zero-copy shard hand-off.
        self.event_spans: List[ChunkSpan] = []

    @property
    def bytes_consumed(self) -> int:
        """Stream offset of the last fully-decoded chunk boundary."""
        return self._base

    @property
    def buffered(self) -> int:
        """Bytes held waiting for their chunk to complete."""
        return len(self._buf)

    def push(self, data: bytes) -> List[TraceEvent]:
        """Consume a slice of the stream; return newly-decoded events."""
        if self.complete and data:
            raise ValueError("data after END chunk")
        self._buf += data
        out: List[TraceEvent] = []
        while True:
            if not self._header_done:
                if len(self._buf) < len(MAGIC) + 1:
                    break
                if bytes(self._buf[: len(MAGIC)]) != MAGIC:
                    raise ValueError("not a WOLF binary trace file (bad magic)")
                version = self._buf[len(MAGIC)]
                if version != FORMAT_VERSION:
                    raise ValueError(f"unsupported trace file version {version}")
                self._advance(len(MAGIC) + 1)
                self._header_done = True
            got = _try_uvarint(self._buf, 1) if len(self._buf) >= 1 else None
            if got is None:
                break
            length, payload_at = got
            if self.max_chunk_bytes is not None and length > self.max_chunk_bytes:
                raise OversizedChunkError(
                    f"chunk declares {length} payload bytes "
                    f"(limit {self.max_chunk_bytes})"
                )
            if len(self._buf) < payload_at + length:
                break
            kind = self._buf[0]
            payload = bytes(self._buf[payload_at : payload_at + length])
            chunk_offset = self._base
            self._advance(payload_at + length)
            if kind == _EVENTS:
                if not self._meta_done:
                    raise ValueError("trace file must start with a META chunk")
                base_step = self._last_step
                events_before = self.events_read
                out.extend(self._decode_events(payload))
                self.event_spans.append(
                    ChunkSpan(
                        offset=chunk_offset,
                        length=length,
                        base_step=base_step,
                        last_step=self._last_step,
                        events=self.events_read - events_before,
                    )
                )
            elif kind == _STRINGS:
                self._load_strings(payload)
            elif kind == _THREADS:
                self._load_threads(payload)
            elif kind == _LOCKS:
                self._load_locks(payload)
            elif kind == _META:
                if self._meta_done:
                    raise ValueError("duplicate META chunk")
                self._load_meta(payload)
                self._meta_done = True
            elif kind == _END:
                self._load_end(payload)
                self.complete = True
                if self._buf:
                    raise ValueError("data after END chunk")
                break
            else:
                raise ValueError(f"unknown chunk kind {kind}")
        return out

    def _advance(self, n: int) -> None:
        del self._buf[:n]
        self._base += n


# ---------------------------------------------------------------------------
# conveniences
# ---------------------------------------------------------------------------


def write_trace(trace: Trace, dest: PathOrIO, *, events_per_chunk: int = 1024) -> int:
    """Pack an in-memory trace to a binary file; returns bytes written
    (when ``dest`` is a path or a tellable stream, else -1)."""
    with TraceFileWriter(
        dest,
        program=trace.program,
        seed=trace.seed,
        events_per_chunk=events_per_chunk,
    ) as w:
        for ev in trace:
            w.write_event(ev)
    if isinstance(dest, (str, os.PathLike)):
        return os.path.getsize(dest)
    try:
        return dest.tell()
    except (OSError, io.UnsupportedOperation):
        return -1


def read_trace(src: PathOrIO) -> Trace:
    """Load a binary trace file fully into memory."""
    with TraceFileReader(src) as r:
        return r.read_trace()


def is_tracefile(path: Union[str, "os.PathLike[str]"]) -> bool:
    """Sniff whether ``path`` starts with the binary trace magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def trace_info(src: PathOrIO) -> Dict[str, object]:
    """Streaming summary of a binary trace file (never materializes it)."""
    per_kind: Dict[str, int] = {}
    with TraceFileReader(src) as r:
        for ev in r:
            name = type(ev).__name__
            per_kind[name] = per_kind.get(name, 0) + 1
        return {
            "program": r.program,
            "seed": r.seed,
            "events": r.events_read,
            "complete": r.declared_events is not None,
            "threads": len(r._threads),
            "locks": len(r._locks),
            "strings": len(r._strings),
            "by_kind": dict(sorted(per_kind.items())),
        }
