"""Execution substrates and the trace model shared by all of them.

The paper instruments Java programs with Soot and records lock/thread
operations.  Here two substrates emit the same event stream:

* :mod:`repro.runtime.sim` — a deterministic cooperative runtime.  Real OS
  threads run the workload code, but a scheduler grants exactly one thread
  at a time and every synchronization operation is a scheduling point, so a
  run is a pure function of ``(program, strategy, seed)``.  This mirrors
  the paper's monitor-thread replay design and makes both detection and
  replay reproducible.
* :mod:`repro.runtime.nativert` — monkeypatch-style instrumentation of real
  ``threading`` primitives with a watchdog deadlock monitor, demonstrating
  the approach on uncontrolled schedules.

The analysis in :mod:`repro.core` consumes only :class:`~repro.runtime.events.Trace`
objects and is therefore substrate-agnostic ("trace driven").
"""

from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    BlockEvent,
    EndEvent,
    JoinEvent,
    NotifyEvent,
    NullTrace,
    ReleaseEvent,
    SinkTrace,
    SpawnEvent,
    Trace,
    TraceEvent,
    WaitEvent,
)
from repro.runtime.tracefile import (
    TraceFileReader,
    TraceFileWriter,
    is_tracefile,
    read_trace,
    trace_info,
    write_trace,
)
from repro.runtime.sim import (
    DeadlockInfo,
    RandomStrategy,
    RoundRobinStrategy,
    RunResult,
    RunStatus,
    SchedulingStrategy,
    SimCondition,
    SimLock,
    SimRuntime,
    SimThreadHandle,
    run_program,
)

__all__ = [
    "AcquireEvent",
    "BeginEvent",
    "BlockEvent",
    "DeadlockInfo",
    "EndEvent",
    "JoinEvent",
    "NotifyEvent",
    "NullTrace",
    "RandomStrategy",
    "ReleaseEvent",
    "RoundRobinStrategy",
    "RunResult",
    "RunStatus",
    "SchedulingStrategy",
    "SimCondition",
    "SimLock",
    "SimRuntime",
    "SimThreadHandle",
    "SinkTrace",
    "SpawnEvent",
    "Trace",
    "TraceEvent",
    "TraceFileReader",
    "TraceFileWriter",
    "WaitEvent",
    "is_tracefile",
    "read_trace",
    "run_program",
    "trace_info",
    "write_trace",
]
