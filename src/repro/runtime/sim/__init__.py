"""Deterministic cooperative runtime (the reproduction's JVM stand-in).

Workload code runs on real OS threads, but a :class:`Scheduler` grants
exactly one thread at a time and every synchronization operation — lock
acquire/release, spawn, join — is a scheduling point.  A run is therefore
a pure function of ``(program, strategy, seed)``: the same seed replays the
same interleaving, and a replay strategy can steer the schedule precisely,
which is what the paper's Replayer (Algorithm 4) requires.
"""

from repro.runtime.sim.explore import (
    DecisionRecordingStrategy,
    ExplorationStats,
    explore_deadlocks,
    explore_runs,
)
from repro.runtime.sim.result import DeadlockInfo, RunResult, RunStatus
from repro.runtime.sim.strategy import (
    RandomStrategy,
    RoundRobinStrategy,
    SchedulingStrategy,
)
from repro.runtime.sim.runtime import (
    SimCondition,
    SimLock,
    SimRuntime,
    SimThreadHandle,
    run_program,
)

__all__ = [
    "DeadlockInfo",
    "DecisionRecordingStrategy",
    "ExplorationStats",
    "RandomStrategy",
    "RoundRobinStrategy",
    "RunResult",
    "RunStatus",
    "SchedulingStrategy",
    "SimCondition",
    "SimLock",
    "SimRuntime",
    "SimThreadHandle",
    "explore_deadlocks",
    "explore_runs",
    "run_program",
]
