"""User-facing API of the simulated runtime: locks, threads, programs.

A *program* is a callable taking a :class:`SimRuntime`; it runs as the root
simulated thread and may create locks, spawn threads and join them.  Lock
acquisition sites can be given explicitly (``lock.at("File.java:123")``)
to mirror the paper's source locations, or derived automatically from the
caller's file/line.

Example::

    def program(rt):
        a, b = rt.new_lock(name="A"), rt.new_lock(name="B")

        def t1():
            with a.at("ex:1"):
                with b.at("ex:2"):
                    pass

        def t2():
            with b.at("ex:3"):
                with a.at("ex:4"):
                    pass

        h1, h2 = rt.spawn(t1, name="t1"), rt.spawn(t2, name="t2")
        h1.join(); h2.join()

    result = run_program(program, strategy=RandomStrategy(seed=7))
"""

from __future__ import annotations

import sys
from typing import Callable, Optional

from repro.runtime.events import NullTrace, SinkTrace, Trace
from repro.runtime.sim.result import RunResult
from repro.runtime.sim.scheduler import (
    AcquireOp,
    CheckpointOp,
    JoinOp,
    NotifyOp,
    ReleaseOp,
    Scheduler,
    SpawnOp,
    WaitOp,
)
from repro.runtime.sim.strategy import RandomStrategy, SchedulingStrategy
from repro.util.ids import ExecIndex, LockId, Site, ThreadId, auto_site

Program = Callable[["SimRuntime"], None]

#: Path fragments of the runtime's own machinery, excluded from the
#: workload stack-depth statistic (the paper's SL column).
_MACHINERY = ("repro/runtime/", "threading.py")


def _workload_depth() -> int:
    """Number of workload frames on the calling thread's stack."""
    frame = sys._getframe(1)
    depth = 0
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(part in filename for part in _MACHINERY):
            depth += 1
        frame = frame.f_back
    return depth


class SimLock:
    """A simulated mutex; ``reentrant=True`` models a Java monitor.

    State (``owner``/``depth``) is mutated only by the scheduler, which runs
    strictly single-threaded with respect to workload parks, so no internal
    locking is needed.
    """

    __slots__ = ("_rt", "lid", "reentrant", "owner", "depth")

    def __init__(self, rt: "SimRuntime", lid: LockId, reentrant: bool) -> None:
        self._rt = rt
        self.lid = lid
        self.reentrant = reentrant
        self.owner: Optional[ThreadId] = None
        self.depth = 0

    def acquire(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        record = self._rt._sched.current_record
        index = ExecIndex(record.tid, site, record.occ.next(site))
        record.cell.park(
            AcquireOp(
                lock=self, site=site, index=index, stack_depth=_workload_depth()
            )
        )

    def release(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        record = self._rt._sched.current_record
        record.cell.park(ReleaseOp(lock=self, site=site))

    def at(self, site: Site) -> "_LockRegion":
        """Context manager acquiring at an explicit source site, so
        workloads can carry the paper's Java file:line labels."""
        return _LockRegion(self, site)

    def __enter__(self) -> "SimLock":
        self.acquire(site=auto_site(2))
        return self

    def __exit__(self, *exc) -> None:
        self.release(site=auto_site(2))

    def locked(self) -> bool:
        return self.owner is not None

    def condition(self, name: str = "") -> "SimCondition":
        """Create a condition variable tied to this monitor (Java's
        ``Object.wait``/``notify`` live on the monitor itself)."""
        return SimCondition(self, name or f"{self.lid.pretty()}.cond")

    def __repr__(self) -> str:
        state = f"held by {self.owner.pretty()} x{self.depth}" if self.owner else "free"
        return f"SimLock({self.lid.pretty()}, {state})"


class SimCondition:
    """Condition variable over a :class:`SimLock` monitor.

    Semantics follow Java monitors: :meth:`wait` requires the monitor
    held, releases it fully (saving the recursion depth), sleeps until
    notified, and reacquires it before returning — the reacquisition is a
    real :class:`~repro.runtime.events.AcquireEvent` at the wait site, so
    the deadlock analysis and replay strategies see waits with no special
    cases.  No spurious wakeups: a woken thread was notified.
    """

    __slots__ = ("lock", "name", "_waiters")

    def __init__(self, lock: SimLock, name: str) -> None:
        self.lock = lock
        self.name = name
        self._waiters: list = []  # _ThreadRecord FIFO, managed by the scheduler

    def wait(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        record = self.lock._rt._sched.current_record
        index = ExecIndex(record.tid, site, record.occ.next(site))
        record.cell.park(
            WaitOp(
                cond=self,
                lock=self.lock,
                site=site,
                index=index,
                stack_depth=_workload_depth(),
            )
        )

    def notify(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        record = self.lock._rt._sched.current_record
        record.cell.park(NotifyOp(cond=self, lock=self.lock, site=site))

    def notify_all(self, site: Optional[Site] = None) -> None:
        if site is None:
            site = auto_site(2)
        record = self.lock._rt._sched.current_record
        record.cell.park(
            NotifyOp(cond=self, lock=self.lock, site=site, notify_all=True)
        )

    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"SimCondition({self.name}, waiters={len(self._waiters)})"


class _LockRegion:
    __slots__ = ("_lock", "_site")

    def __init__(self, lock: SimLock, site: Site) -> None:
        self._lock = lock
        self._site = site

    def __enter__(self) -> SimLock:
        self._lock.acquire(site=self._site)
        return self._lock

    def __exit__(self, *exc) -> None:
        self._lock.release(site=self._site)


class SimThreadHandle:
    """Handle to a spawned simulated thread (already started)."""

    __slots__ = ("_rt", "tid", "_target")

    def __init__(self, rt: "SimRuntime", tid: ThreadId, target: Callable[[], None]):
        self._rt = rt
        self.tid = tid
        self._target = target

    def join(self, site: Optional[Site] = None) -> None:
        record = self._rt._sched.current_record
        record.cell.park(JoinOp(handle=self))

    def is_alive(self) -> bool:
        from repro.runtime.sim.scheduler import ThreadState

        rec = self._rt._sched.records.get(self.tid)
        return rec is not None and rec.state != ThreadState.DONE

    def __repr__(self) -> str:
        return f"SimThreadHandle({self.tid.pretty()})"


class SimRuntime:
    """Facade the workload code programs against."""

    def __init__(self, sched: Scheduler) -> None:
        self._sched = sched
        sched._runtime = self

    def new_lock(
        self,
        *,
        name: str = "",
        site: Optional[Site] = None,
        reentrant: bool = True,
    ) -> SimLock:
        """Create a lock owned (for identity purposes) by the current
        thread.  Java monitors are reentrant, hence the default."""
        if site is None:
            site = auto_site(2)
        record = self._sched.current_record
        lid = LockId(record.tid, site, record.lock_occ.next(site), name=name)
        return SimLock(self, lid, reentrant)

    def spawn(
        self,
        target: Callable[[], None],
        *,
        name: str = "",
        site: Optional[Site] = None,
    ) -> SimThreadHandle:
        """Create *and start* a thread (paper's ``t.start()``).

        The spawn itself is a scheduling point; the child begins executing
        only when the scheduler first picks it.
        """
        if site is None:
            site = auto_site(2)
        record = self._sched.current_record
        tid = ThreadId(record.tid, site, record.spawn_occ.next(site), name=name)
        handle = SimThreadHandle(self, tid, target)
        record.cell.park(SpawnOp(handle=handle))
        return handle

    def checkpoint(self) -> None:
        """Voluntary scheduling point (no trace event); lets strategies
        interleave lock-free code regions."""
        record = self._sched.current_record
        record.cell.park(CheckpointOp())

    @property
    def current(self) -> ThreadId:
        return self._sched.current_record.tid

    @property
    def trace(self) -> Trace:
        return self._sched.trace


def run_program(
    program: Program,
    strategy: Optional[SchedulingStrategy] = None,
    *,
    seed: int = 0,
    name: str = "",
    max_steps: int = 200_000,
    step_timeout: float = 30.0,
    record_trace: bool = True,
    trace_sink: Optional[Callable] = None,
) -> RunResult:
    """Execute ``program`` under the simulated runtime and return the
    :class:`RunResult` (including the recorded :class:`Trace`).

    ``strategy`` defaults to :class:`RandomStrategy` with ``seed``; passing
    an explicit strategy makes ``seed`` purely informational metadata.
    ``record_trace=False`` discards events — the 'uninstrumented' baseline
    for overhead measurements.  ``trace_sink`` (a callable taking one
    event, e.g. a ``TraceFileWriter`` or ``StreamingDetector.feed``)
    streams events out instead of storing them: the run's memory stays
    bounded by the sink's state, and ``RunResult.trace`` carries only
    metadata.  Combine with ``record_trace=True`` is unnecessary — a sink
    implies no in-memory event list.
    """
    if strategy is None:
        strategy = RandomStrategy(seed)
    prog_name = name or getattr(program, "__name__", "program")
    if trace_sink is not None:
        trace: Trace = SinkTrace(trace_sink, program=prog_name, seed=seed)
    else:
        trace_cls = Trace if record_trace else NullTrace
        trace = trace_cls(program=prog_name, seed=seed)
    sched = Scheduler(
        strategy, trace=trace, max_steps=max_steps, step_timeout=step_timeout
    )
    rt = SimRuntime(sched)
    root = sched.register_root(ThreadId.root(), lambda: program(rt))
    return sched.run(root)
