"""Scheduling strategies: who runs next, and when to hold a thread back.

The scheduler is mechanism; strategies are policy.  Detection runs use
:class:`RandomStrategy` (the paper analyses ordinary randomly-interleaved
executions); the WOLF Replayer and the DeadlockFuzzer baseline are
strategies too (:mod:`repro.core.replayer`, :mod:`repro.baselines`), which
is what lets the same runtime serve detection, replay and fuzzing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.util.ids import ThreadId
from repro.util.rng import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.events import TraceEvent
    from repro.runtime.sim.scheduler import AcquireOp, Scheduler


class SchedulingStrategy:
    """Policy hooks consulted by the :class:`Scheduler`.

    Subclasses may keep per-run state; ``attach`` is called once per run
    before any other hook.
    """

    sched: "Scheduler"

    def attach(self, sched: "Scheduler") -> None:
        self.sched = sched

    def pick(self, ready: List[ThreadId]) -> ThreadId:
        """Choose the next thread to step from the non-empty ready list."""
        return ready[0]

    def before_acquire(self, thread: ThreadId, op: "AcquireOp") -> bool:
        """Return ``False`` to pause ``thread`` instead of letting it
        attempt this acquisition.  Paused threads stay parked until
        :meth:`Scheduler.unpause` is called (typically from
        :meth:`on_event`) or :meth:`choose_unpause` releases one."""
        return True

    def on_event(self, event: "TraceEvent") -> None:
        """Observe each committed event (in global order)."""

    def choose_unpause(self, paused: List[ThreadId]) -> Optional[ThreadId]:
        """Nothing is runnable but paused threads exist: pick one to
        release (Algorithm 4, lines 5-7) or ``None`` to give up and let the
        scheduler classify the state."""
        return paused[0] if paused else None


def sticky_pick(
    rng: DeterministicRNG,
    ready: List[ThreadId],
    last: Optional[ThreadId],
    stickiness: float,
) -> ThreadId:
    """Burst-biased random choice: keep running ``last`` with probability
    ``stickiness`` when it is still ready, otherwise pick uniformly.

    Real schedulers run threads for whole quanta, so context switches at
    *every* synchronization point (stickiness 0) wildly over-represent
    tight interleavings — under it, deadlock-prone workloads deadlock on
    nearly every run and the detector never sees a complete trace.  High
    stickiness models quantum-based scheduling: overlaps (and therefore
    manifested deadlocks) become rare events, as on real hardware.
    """
    if last is not None and last in ready and rng.random() < stickiness:
        return last
    return rng.choice(ready)


class RandomStrategy(SchedulingStrategy):
    """Seeded random scheduling; never pauses anyone.

    This models the ordinary executions the detector observes.  Different
    seeds explore different interleavings of the same test input;
    ``stickiness`` sets the burst bias (see :func:`sticky_pick`).
    """

    def __init__(self, seed: int = 0, *, stickiness: float = 0.0) -> None:
        self.rng = DeterministicRNG(seed)
        self.stickiness = stickiness
        self._last: Optional[ThreadId] = None

    def pick(self, ready: List[ThreadId]) -> ThreadId:
        choice = sticky_pick(self.rng, ready, self._last, self.stickiness)
        self._last = choice
        return choice

    def choose_unpause(self, paused: List[ThreadId]) -> Optional[ThreadId]:
        return self.rng.choice(paused) if paused else None


class RoundRobinStrategy(SchedulingStrategy):
    """Cycle through ready threads in creation order (deterministic,
    seed-free).  Useful in tests that need a fixed, legible schedule."""

    def __init__(self) -> None:
        self._last: Optional[ThreadId] = None

    def pick(self, ready: List[ThreadId]) -> ThreadId:
        if self._last in ready:
            i = ready.index(self._last)
            choice = ready[(i + 1) % len(ready)]
        else:
            choice = ready[0]
        self._last = choice
        return choice


class FixedOrderStrategy(SchedulingStrategy):
    """Run threads to completion in a fixed priority order.

    Always steps the highest-priority ready thread; priorities are given as
    a list of thread *names* (unlisted threads come last, creation order).
    Handy for constructing specific interleavings in unit tests.
    """

    def __init__(self, priority: List[str]) -> None:
        self.priority = list(priority)

    def _rank(self, tid: ThreadId) -> int:
        name = tid.pretty()
        try:
            return self.priority.index(name)
        except ValueError:
            return len(self.priority)

    def pick(self, ready: List[ThreadId]) -> ThreadId:
        return min(ready, key=self._rank)
