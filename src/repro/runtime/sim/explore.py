"""Systematic schedule exploration (CHESS-style, paper §4.4).

The paper's discussion points at Musuvathi & Qadeer's iterative context
bounding as the complementary tool for WOLF's trace-incompleteness
limitation: instead of sampling random schedules, *enumerate* them.

The deterministic runtime makes this straightforward: every scheduling
decision is a ``pick`` from a candidate list, so a schedule is the
sequence of chosen indices.  :class:`DecisionRecordingStrategy` replays a
decision prefix then follows a default policy while recording the choice
points it passes; the explorer backtracks over untried alternatives in
DFS order, optionally bounding *preemptions* (switching away from a
runnable current thread), which is the context-bound that makes the
search tractable (CHESS's key idea).

``explore_runs`` yields one :class:`RunResult` per distinct explored
schedule; :func:`explore_deadlocks` aggregates the distinct deadlocks.
Exhaustive exploration of small programs is also used by the test suite
to check the Pruner *soundly* (not just statistically): a pruned cycle's
sites must not deadlock in ANY schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.runtime.sim.result import RunResult, RunStatus
from repro.runtime.sim.runtime import Program, run_program
from repro.runtime.sim.strategy import SchedulingStrategy
from repro.util.ids import ThreadId


@dataclass
class _ChoicePoint:
    """One pick() the strategy answered while running a schedule."""

    n_candidates: int
    chosen: int
    #: True when candidates included the previously-running thread but the
    #: choice switched away from it — a preemption in CHESS terms.
    preemptive_alternatives: Tuple[int, ...] = ()


class DecisionRecordingStrategy(SchedulingStrategy):
    """Replays ``prefix`` decisions, then picks the default (index 0,
    preferring the currently-running thread), recording every choice."""

    def __init__(self, prefix: List[int]) -> None:
        self.prefix = prefix
        self.log: List[_ChoicePoint] = []
        self._last: Optional[ThreadId] = None

    def pick(self, ready: List[ThreadId]) -> ThreadId:
        # Default policy: stay on the current thread when possible (this
        # makes "extra" choices preemptions, matching context bounding).
        order = list(ready)
        if self._last in ready:
            order.remove(self._last)
            order.insert(0, self._last)
        k = len(self.log)
        chosen = self.prefix[k] if k < len(self.prefix) else 0
        chosen = min(chosen, len(order) - 1)
        preemptive = tuple(
            i
            for i in range(len(order))
            if self._last in ready and order[i] != self._last
        )
        self.log.append(
            _ChoicePoint(
                n_candidates=len(order),
                chosen=chosen,
                preemptive_alternatives=preemptive,
            )
        )
        choice = order[chosen]
        self._last = choice
        return choice

    def choose_unpause(self, paused: List[ThreadId]) -> Optional[ThreadId]:
        return paused[0] if paused else None


@dataclass
class ExplorationStats:
    runs: int = 0
    deadlocks: int = 0
    truncated: bool = False


def explore_runs(
    program: Program,
    *,
    max_runs: int = 2_000,
    preemption_bound: Optional[int] = None,
    name: str = "",
    max_steps: int = 50_000,
) -> Iterator[RunResult]:
    """DFS over the schedule tree; yields each explored run's result.

    ``preemption_bound`` limits how many *preemptive* choices a schedule
    may contain (``None`` = unbounded = exhaustive).  ``max_runs`` caps
    the search; hitting it is reported by the caller via counting.
    """
    stack: List[List[int]] = [[]]
    seen: Set[Tuple[int, ...]] = set()
    runs = 0
    while stack and runs < max_runs:
        prefix = stack.pop()
        key = tuple(prefix)
        if key in seen:
            continue
        seen.add(key)
        strategy = DecisionRecordingStrategy(list(prefix))
        result = run_program(
            program, strategy, name=name, max_steps=max_steps
        )
        runs += 1
        yield result
        # Enqueue untried alternatives at every choice point at/after the
        # prefix (standard stateless-search backtracking).
        for depth in range(len(prefix), len(strategy.log)):
            cp = strategy.log[depth]
            base = strategy.log[: depth]
            used_preemptions = sum(
                1
                for d, c in enumerate(base)
                if c.chosen in c.preemptive_alternatives
            )
            for alt in range(1, cp.n_candidates):
                if (
                    preemption_bound is not None
                    and alt in cp.preemptive_alternatives
                    and used_preemptions >= preemption_bound
                ):
                    continue
                stack.append(
                    [c.chosen for c in base] + [alt]
                )


def explore_deadlocks(
    program: Program,
    *,
    max_runs: int = 2_000,
    preemption_bound: Optional[int] = None,
    name: str = "",
    max_steps: int = 50_000,
) -> Tuple[Dict[FrozenSet[str], RunResult], ExplorationStats]:
    """Run the explorer and collect one witness run per distinct deadlock
    site-set."""
    witnesses: Dict[FrozenSet[str], RunResult] = {}
    stats = ExplorationStats()
    for result in explore_runs(
        program,
        max_runs=max_runs,
        preemption_bound=preemption_bound,
        name=name,
        max_steps=max_steps,
    ):
        stats.runs += 1
        if result.status is RunStatus.DEADLOCK and result.deadlock is not None:
            stats.deadlocks += 1
            witnesses.setdefault(result.deadlock.sites, result)
    stats.truncated = stats.runs >= max_runs
    return witnesses, stats
