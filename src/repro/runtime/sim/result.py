"""Run outcomes reported by the simulated runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.events import Trace
from repro.util.ids import ExecIndex, LockId, Site, ThreadId


class RunStatus(enum.Enum):
    """Terminal state of one simulated execution."""

    COMPLETED = "completed"
    #: Every live thread is blocked and a cyclic wait exists among
    #: lock-blocked threads — a resource deadlock (what WOLF reproduces).
    DEADLOCK = "deadlock"
    #: Every live thread is blocked but no lock cycle exists (e.g. a join
    #: on a thread that is itself lock-blocked outside any cycle).
    STUCK = "stuck"
    #: The scheduler's step budget ran out (runaway workload guard).
    STEP_LIMIT = "step_limit"
    #: A workload thread raised an exception.
    ERROR = "error"


@dataclass(frozen=True)
class BlockedAt:
    """Where one thread was blocked when the run ended."""

    thread: ThreadId
    lock: LockId
    index: ExecIndex
    holder: Optional[ThreadId]

    @property
    def site(self) -> Site:
        return self.index.site


@dataclass
class DeadlockInfo:
    """A manifested deadlock: the cyclically-waiting threads.

    ``cycle`` lists the blocked acquisitions around the wait-for cycle;
    ``sites`` (the deduplicated deadlocking source locations) is what the
    paper's *hit* criterion compares (§4.2: "acquired locks (or attempts to
    acquire locks) at the same locations").
    """

    cycle: List[BlockedAt]
    all_blocked: List[BlockedAt] = field(default_factory=list)

    @property
    def threads(self) -> Tuple[ThreadId, ...]:
        return tuple(b.thread for b in self.cycle)

    @property
    def sites(self) -> frozenset:
        return frozenset(b.site for b in self.cycle)

    def pretty(self) -> str:
        lines = ["deadlock:"]
        for b in self.cycle:
            holder = b.holder.pretty() if b.holder else "?"
            lines.append(
                f"  {b.thread.pretty()} waits for {b.lock.pretty()} "
                f"at {b.site} (held by {holder})"
            )
        return "\n".join(lines)


@dataclass
class RunResult:
    """Everything one simulated run produced."""

    status: RunStatus
    trace: Trace
    steps: int
    deadlock: Optional[DeadlockInfo] = None
    errors: Dict[ThreadId, BaseException] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def deadlocked(self) -> bool:
        return self.status is RunStatus.DEADLOCK

    def raise_errors(self) -> None:
        for exc in self.errors.values():
            raise exc
