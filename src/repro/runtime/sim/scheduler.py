"""The cooperative scheduler: one thread runs at a time, by decree.

Workload threads are real OS threads, but each parks at every
synchronization operation and waits for a grant.  The scheduler (running in
the caller's thread) repeatedly asks the strategy which parked thread to
step, commits that thread's pending operation (or blocks/pauses it) and
lets it run to its next park.  Because scheduling decisions happen *only*
at these parks, an execution is a deterministic function of the strategy's
choices — the property the paper's Replayer relies on to drive a program
into a specific deadlock.

Protocol per thread (see :class:`_Cell`):

1. the workload thread posts an :class:`Op` and waits;
2. the scheduler inspects the op, updates lock/thread state, records a
   :class:`~repro.runtime.events.TraceEvent`, and either *grants* (thread
   resumes until its next op) or leaves the thread parked (blocked/paused);
3. on grant the scheduler waits for the thread to park again or finish.

Deadlock detection is structural: when nothing is runnable and nobody can
be unpaused, the wait-for graph over blocked threads is examined; a cycle
of lock waits is a manifested resource deadlock (paper §3.5: "none of the
threads can make progress").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    BlockEvent,
    EndEvent,
    JoinEvent,
    NotifyEvent,
    ReleaseEvent,
    SpawnEvent,
    Trace,
    TraceEvent,
    WaitEvent,
)
from repro.runtime.sim.result import BlockedAt, DeadlockInfo, RunResult, RunStatus
from repro.runtime.sim.strategy import SchedulingStrategy
from repro.util.digraph import DiGraph
from repro.util.ids import ExecIndex, OccurrenceCounter, Site, ThreadId


class ThreadKilled(BaseException):
    """Raised inside workload threads to unwind them at teardown.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    handlers in workloads cannot swallow it.
    """


class SchedulerStalled(RuntimeError):
    """A workload thread failed to reach a scheduling point in time
    (almost always an unbounded loop with no synchronization ops)."""


class LockUsageError(RuntimeError):
    """Workload misuse of a lock (e.g. releasing a lock it does not hold)."""


# --------------------------------------------------------------------------
# Operations posted by workload threads
# --------------------------------------------------------------------------


@dataclass
class Op:
    """Base class for parked operations."""


@dataclass
class BeginOp(Op):
    """First park of every thread, before any workload code runs."""


@dataclass
class AcquireOp(Op):
    lock: object  # SimLock (duck-typed to avoid an import cycle)
    site: Site
    index: ExecIndex
    stack_depth: int = 0


@dataclass
class ReleaseOp(Op):
    lock: object
    site: Site


@dataclass
class SpawnOp(Op):
    handle: object  # SimThreadHandle


@dataclass
class JoinOp(Op):
    handle: object


@dataclass
class CheckpointOp(Op):
    """Voluntary scheduling point in lock-free code (no trace event)."""


@dataclass
class WaitOp(Op):
    """Condition wait (Java ``Object.wait``): release the monitor, sleep
    until notified, then *reacquire* the monitor at this site.

    ``phase`` tracks the three dispatch stages: ``"start"`` (validate +
    release), ``"waiting"`` (parked on the condition) and ``"reacquire"``
    (notified; contending for the monitor again).  ``index`` is the
    execution index of the reacquisition — a real acquisition to the
    analysis and to replay strategies.
    """

    cond: object  # SimCondition
    lock: object  # SimLock (the condition's monitor)
    site: Site
    index: ExecIndex
    stack_depth: int = 0
    phase: str = "start"
    saved_depth: int = 0


@dataclass
class NotifyOp(Op):
    cond: object
    lock: object
    site: Site
    notify_all: bool = False


# --------------------------------------------------------------------------
# Thread cells and records
# --------------------------------------------------------------------------


class _Cell:
    """Handshake channel between one workload thread and the scheduler."""

    __slots__ = (
        "cond",
        "op",
        "op_posted",
        "granted",
        "abort",
        "finished",
        "exc",
        "exc_to_raise",
    )

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.op: Optional[Op] = None
        self.op_posted = False
        self.granted = False
        self.abort = False
        self.finished = False
        self.exc: Optional[BaseException] = None
        self.exc_to_raise: Optional[BaseException] = None

    # -- workload-thread side ------------------------------------------------

    def park(self, op: Op) -> None:
        """Post ``op`` and wait until the scheduler grants continuation."""
        with self.cond:
            if self.abort:
                raise ThreadKilled()
            self.op = op
            self.op_posted = True
            self.cond.notify_all()
            while not self.granted and not self.abort:
                self.cond.wait()
            if self.abort:
                raise ThreadKilled()
            self.granted = False
            self.op = None
            if self.exc_to_raise is not None:
                exc = self.exc_to_raise
                self.exc_to_raise = None
                raise exc

    def finish(self) -> None:
        with self.cond:
            self.finished = True
            self.cond.notify_all()

    # -- scheduler side --------------------------------------------------------

    def grant(self) -> None:
        with self.cond:
            self.op_posted = False
            self.granted = True
            self.cond.notify_all()

    def wait_parked(self, timeout: float) -> None:
        """Block until the thread posts its next op or finishes."""
        deadline = time.monotonic() + timeout
        with self.cond:
            while not self.op_posted and not self.finished:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SchedulerStalled(
                        "workload thread did not reach a scheduling point "
                        f"within {timeout:.1f}s"
                    )
                self.cond.wait(remaining)

    def kill(self) -> None:
        with self.cond:
            self.abort = True
            self.cond.notify_all()


class ThreadState:
    NEW = "new"
    READY = "ready"
    BLOCKED = "blocked"  # on a lock or a join; see record.blocked_*
    PAUSED = "paused"  # held back by the strategy
    DONE = "done"


@dataclass
class _ThreadRecord:
    tid: ThreadId
    cell: _Cell
    target: object
    os_thread: Optional[threading.Thread] = None
    state: str = ThreadState.NEW
    #: Acquisition-ordered held locks with the index each was acquired at.
    held: List[Tuple[object, ExecIndex]] = field(default_factory=list)
    #: Per-site occurrence counter for execution indices (thread-side use).
    occ: OccurrenceCounter = field(default_factory=OccurrenceCounter)
    #: Per-site counters minting child ThreadIds and LockIds.
    spawn_occ: OccurrenceCounter = field(default_factory=OccurrenceCounter)
    lock_occ: OccurrenceCounter = field(default_factory=OccurrenceCounter)
    blocked_lock: Optional[object] = None
    blocked_index: Optional[ExecIndex] = None
    join_on: Optional[ThreadId] = None
    #: Set while parked in a condition wait (phase "waiting").
    blocked_cond: Optional[object] = None
    #: Set when the scheduler force-releases this thread from a strategy
    #: pause (Algorithm 4 lines 5-7): the next acquire dispatch bypasses
    #: the strategy gate once, otherwise the strategy would immediately
    #: re-pause it and the loop would spin forever.
    skip_gate: bool = False

    def held_locks(self) -> Tuple[object, ...]:
        return tuple(l for l, _ in self.held)


class Scheduler:
    """Executes one simulated run.  Create via
    :func:`repro.runtime.sim.runtime.run_program`."""

    def __init__(
        self,
        strategy: SchedulingStrategy,
        *,
        trace: Optional[Trace] = None,
        max_steps: int = 200_000,
        step_timeout: float = 30.0,
    ) -> None:
        self.strategy = strategy
        self.trace = trace if trace is not None else Trace()
        self.max_steps = max_steps
        self.step_timeout = step_timeout
        self.records: Dict[ThreadId, _ThreadRecord] = {}
        self._tls = threading.local()
        self._steps = 0
        self._runtime = None  # set by SimRuntime
        strategy.attach(self)

    # -- thread-side accessors -------------------------------------------------

    @property
    def current_record(self) -> _ThreadRecord:
        record = getattr(self._tls, "record", None)
        if record is None:
            raise RuntimeError(
                "this operation is only valid inside a simulated thread"
            )
        return record

    def in_sim_thread(self) -> bool:
        return getattr(self._tls, "record", None) is not None

    # -- lifecycle ---------------------------------------------------------------

    def register_root(self, tid: ThreadId, target) -> _ThreadRecord:
        return self._register(tid, target)

    def _register(self, tid: ThreadId, target) -> _ThreadRecord:
        if tid in self.records:
            raise RuntimeError(f"duplicate thread id {tid!r}")
        record = _ThreadRecord(tid=tid, cell=_Cell(), target=target)
        self.records[tid] = record
        return record

    def _start_os_thread(self, record: _ThreadRecord) -> None:
        t = threading.Thread(
            target=self._runner, args=(record,), daemon=True, name=record.tid.pretty()
        )
        record.os_thread = t
        t.start()
        record.cell.wait_parked(self.step_timeout)  # parks at BeginOp
        record.state = ThreadState.READY

    def _runner(self, record: _ThreadRecord) -> None:
        self._tls.record = record
        try:
            record.cell.park(BeginOp())
            record.target()
        except ThreadKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported via RunResult
            record.cell.exc = exc
        finally:
            record.cell.finish()

    # -- main loop -----------------------------------------------------------------

    def run(self, root: _ThreadRecord) -> RunResult:
        t0 = time.perf_counter()
        status = RunStatus.COMPLETED
        deadlock: Optional[DeadlockInfo] = None
        iterations = 0
        try:
            self._start_os_thread(root)
            while True:
                iterations += 1
                if self._steps >= self.max_steps or iterations > 10 * self.max_steps:
                    status = RunStatus.STEP_LIMIT
                    break
                ready = [
                    r.tid for r in self.records.values() if r.state == ThreadState.READY
                ]
                if not ready:
                    paused = [
                        r.tid
                        for r in self.records.values()
                        if r.state == ThreadState.PAUSED
                    ]
                    if paused:
                        victim = self.strategy.choose_unpause(paused)
                        if victim is not None:
                            self.records[victim].skip_gate = True
                            self.unpause(victim)
                            continue
                    blocked = [
                        r
                        for r in self.records.values()
                        if r.state in (ThreadState.BLOCKED, ThreadState.PAUSED)
                    ]
                    if not blocked:
                        status = RunStatus.COMPLETED
                        break
                    deadlock = self._classify_stuck()
                    status = (
                        RunStatus.DEADLOCK if deadlock is not None else RunStatus.STUCK
                    )
                    break
                tid = self.strategy.pick(ready)
                self._dispatch(self.records[tid])
        finally:
            self._teardown()
        errors = {
            r.tid: r.cell.exc for r in self.records.values() if r.cell.exc is not None
        }
        if errors and status is RunStatus.COMPLETED:
            status = RunStatus.ERROR
        return RunResult(
            status=status,
            trace=self.trace,
            steps=self._steps,
            deadlock=deadlock,
            errors=errors,
            wall_time_s=time.perf_counter() - t0,
        )

    # -- pause control (used by replay strategies) -----------------------------------

    def unpause(self, tid: ThreadId) -> None:
        record = self.records[tid]
        if record.state == ThreadState.PAUSED:
            record.state = ThreadState.READY

    def pause(self, tid: ThreadId) -> None:
        record = self.records[tid]
        if record.state == ThreadState.READY:
            record.state = ThreadState.PAUSED

    # -- dispatch -------------------------------------------------------------------

    def _dispatch(self, record: _ThreadRecord) -> None:
        op = record.cell.op
        if isinstance(op, BeginOp):
            self._commit(BeginEvent(self._next_step(), record.tid))
            self._resume(record)
        elif isinstance(op, AcquireOp):
            self._dispatch_acquire(record, op)
        elif isinstance(op, ReleaseOp):
            self._dispatch_release(record, op)
        elif isinstance(op, SpawnOp):
            self._dispatch_spawn(record, op)
        elif isinstance(op, JoinOp):
            self._dispatch_join(record, op)
        elif isinstance(op, WaitOp):
            self._dispatch_wait(record, op)
        elif isinstance(op, NotifyOp):
            self._dispatch_notify(record, op)
        elif isinstance(op, CheckpointOp):
            self._resume(record)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown op {op!r}")

    def _dispatch_acquire(self, record: _ThreadRecord, op: AcquireOp) -> None:
        if record.skip_gate:
            record.skip_gate = False
        elif not self.strategy.before_acquire(record.tid, op):
            record.state = ThreadState.PAUSED
            return
        lock = op.lock
        if lock.owner is None:
            lock.owner = record.tid
            lock.depth = 1
            record.held.append((lock, op.index))
            record.blocked_lock = record.blocked_index = None
            self._commit(
                AcquireEvent(
                    self._next_step(),
                    record.tid,
                    lock=lock.lid,
                    index=op.index,
                    held=tuple(l.lid for l, _ in record.held[:-1]),
                    held_indices=tuple(ix for _, ix in record.held[:-1]),
                    reentrant=False,
                    stack_depth=op.stack_depth,
                )
            )
            self._resume(record)
        elif lock.owner == record.tid and lock.reentrant:
            lock.depth += 1
            self._commit(
                AcquireEvent(
                    self._next_step(),
                    record.tid,
                    lock=lock.lid,
                    index=op.index,
                    held=tuple(l.lid for l, _ in record.held),
                    held_indices=tuple(ix for _, ix in record.held),
                    reentrant=True,
                    stack_depth=op.stack_depth,
                )
            )
            self._resume(record)
        else:
            # Held by someone else (or a non-reentrant self-acquire).
            if record.blocked_lock is not lock or record.blocked_index != op.index:
                self._commit(
                    BlockEvent(
                        self._next_step(),
                        record.tid,
                        lock=lock.lid,
                        index=op.index,
                        holder=lock.owner,
                    )
                )
            record.blocked_lock = lock
            record.blocked_index = op.index
            record.state = ThreadState.BLOCKED

    def _dispatch_release(self, record: _ThreadRecord, op: ReleaseOp) -> None:
        lock = op.lock
        if lock.owner != record.tid:
            record.cell.exc_to_raise = LockUsageError(
                f"{record.tid.pretty()} released {lock.lid.pretty()} "
                "which it does not hold"
            )
            self._resume(record)
            return
        lock.depth -= 1
        reentrant = lock.depth > 0
        if not reentrant:
            lock.owner = None
            for i in range(len(record.held) - 1, -1, -1):
                if record.held[i][0] is lock:
                    del record.held[i]
                    break
            for r in self.records.values():
                if r.state == ThreadState.BLOCKED and r.blocked_lock is lock:
                    r.state = ThreadState.READY
        self._commit(
            ReleaseEvent(
                self._next_step(),
                record.tid,
                lock=lock.lid,
                site=op.site,
                reentrant=reentrant,
            )
        )
        self._resume(record)

    def _dispatch_spawn(self, record: _ThreadRecord, op: SpawnOp) -> None:
        handle = op.handle
        child = self._register(handle.tid, handle._target)
        self._commit(SpawnEvent(self._next_step(), record.tid, child=handle.tid))
        self._start_os_thread(child)
        self._resume(record)

    def _dispatch_join(self, record: _ThreadRecord, op: JoinOp) -> None:
        target = self.records.get(op.handle.tid)
        if target is None:
            record.cell.exc_to_raise = RuntimeError(
                f"join on never-started thread {op.handle.tid!r}"
            )
            self._resume(record)
            return
        if target.state == ThreadState.DONE:
            record.join_on = None
            self._commit(JoinEvent(self._next_step(), record.tid, target=target.tid))
            self._resume(record)
        else:
            record.join_on = target.tid
            record.state = ThreadState.BLOCKED

    def _dispatch_wait(self, record: _ThreadRecord, op: WaitOp) -> None:
        lock = op.lock
        if op.phase == "start":
            if lock.owner != record.tid:
                record.cell.exc_to_raise = LockUsageError(
                    f"{record.tid.pretty()} waited on {op.cond.name!r} "
                    f"without holding {lock.lid.pretty()}"
                )
                self._resume(record)
                return
            # Fully release the monitor (Java saves the recursion depth).
            op.saved_depth = lock.depth
            lock.depth = 0
            lock.owner = None
            for i in range(len(record.held) - 1, -1, -1):
                if record.held[i][0] is lock:
                    del record.held[i]
                    break
            self._commit(
                WaitEvent(
                    self._next_step(),
                    record.tid,
                    condition=op.cond.name,
                    lock=lock.lid,
                    site=op.site,
                )
            )
            self._commit(
                ReleaseEvent(
                    self._next_step(),
                    record.tid,
                    lock=lock.lid,
                    site=op.site,
                    reentrant=False,
                )
            )
            for r in self.records.values():
                if r.state == ThreadState.BLOCKED and r.blocked_lock is lock:
                    r.state = ThreadState.READY
            op.phase = "waiting"
            record.blocked_cond = op.cond
            record.state = ThreadState.BLOCKED
            op.cond._waiters.append(record)
        elif op.phase == "reacquire":
            # Notified: contend for the monitor like a fresh acquisition.
            if record.skip_gate:
                record.skip_gate = False
            elif not self.strategy.before_acquire(record.tid, op):
                record.state = ThreadState.PAUSED
                return
            if lock.owner is None:
                lock.owner = record.tid
                lock.depth = op.saved_depth
                record.blocked_lock = record.blocked_index = None
                self._commit(
                    AcquireEvent(
                        self._next_step(),
                        record.tid,
                        lock=lock.lid,
                        index=op.index,
                        held=tuple(l.lid for l, _ in record.held),
                        held_indices=tuple(ix for _, ix in record.held),
                        reentrant=False,
                        stack_depth=op.stack_depth,
                    )
                )
                record.held.append((lock, op.index))
                self._resume(record)
            else:
                if record.blocked_lock is not lock or record.blocked_index != op.index:
                    self._commit(
                        BlockEvent(
                            self._next_step(),
                            record.tid,
                            lock=lock.lid,
                            index=op.index,
                            holder=lock.owner,
                        )
                    )
                record.blocked_lock = lock
                record.blocked_index = op.index
                record.state = ThreadState.BLOCKED
        else:  # pragma: no cover - "waiting" is never dispatched
            raise RuntimeError(f"wait op dispatched in phase {op.phase!r}")

    def _dispatch_notify(self, record: _ThreadRecord, op: NotifyOp) -> None:
        lock = op.lock
        if lock.owner != record.tid:
            record.cell.exc_to_raise = LockUsageError(
                f"{record.tid.pretty()} notified {op.cond.name!r} "
                f"without holding {lock.lid.pretty()}"
            )
            self._resume(record)
            return
        waiters = op.cond._waiters
        n = len(waiters) if op.notify_all else min(1, len(waiters))
        for _ in range(n):
            waiter = waiters.pop(0)
            waiter.cell.op.phase = "reacquire"
            waiter.blocked_cond = None
            waiter.state = ThreadState.READY
        self._commit(
            NotifyEvent(
                self._next_step(),
                record.tid,
                condition=op.cond.name,
                lock=lock.lid,
                site=op.site,
                woken=n,
                notify_all=op.notify_all,
            )
        )
        self._resume(record)

    def _resume(self, record: _ThreadRecord) -> None:
        """Grant the thread one burst: it runs until its next park."""
        record.cell.grant()
        record.cell.wait_parked(self.step_timeout)
        if record.cell.finished:
            record.state = ThreadState.DONE
            self._commit(EndEvent(self._next_step(), record.tid))
            if record.held:
                names = ", ".join(l.lid.pretty() for l, _ in record.held)
                record.cell.exc = LockUsageError(
                    f"{record.tid.pretty()} terminated while holding: {names}"
                )
                # Free the leaked locks so other threads are not wedged by a
                # workload bug unrelated to the deadlock under study.
                for lock, _ in record.held:
                    lock.owner = None
                    lock.depth = 0
                    for r in self.records.values():
                        if r.state == ThreadState.BLOCKED and r.blocked_lock is lock:
                            r.state = ThreadState.READY
                record.held.clear()
            for r in self.records.values():
                if r.state == ThreadState.BLOCKED and r.join_on == record.tid:
                    r.join_on = None
                    r.state = ThreadState.READY
        else:
            record.state = ThreadState.READY

    # -- bookkeeping --------------------------------------------------------------------

    def _next_step(self) -> int:
        step = self._steps
        self._steps += 1
        return step

    def _commit(self, event: TraceEvent) -> None:
        self.trace.append(event)
        self.strategy.on_event(event)

    def _classify_stuck(self) -> Optional[DeadlockInfo]:
        """Return deadlock info if the blocked threads contain a cycle of
        lock waits; ``None`` for other stuck states."""
        wait_for = DiGraph()
        blocked_at: Dict[ThreadId, BlockedAt] = {}
        for r in self.records.values():
            if r.state != ThreadState.BLOCKED:
                continue
            if r.blocked_lock is not None and r.join_on is None:
                holder = r.blocked_lock.owner
                blocked_at[r.tid] = BlockedAt(
                    thread=r.tid,
                    lock=r.blocked_lock.lid,
                    index=r.blocked_index,
                    holder=holder,
                )
                if holder is not None:
                    wait_for.add_edge(r.tid, holder)
            elif r.join_on is not None:
                wait_for.add_edge(r.tid, r.join_on)
        cycle = wait_for.find_cycle()
        if cycle is None:
            return None
        if not all(tid in blocked_at for tid in cycle):
            return None  # mixed lock/join cycle: report as STUCK
        return DeadlockInfo(
            cycle=[blocked_at[tid] for tid in cycle],
            all_blocked=list(blocked_at.values()),
        )

    def _teardown(self) -> None:
        for record in self.records.values():
            if record.state != ThreadState.DONE:
                record.cell.kill()
        for record in self.records.values():
            if record.os_thread is not None:
                record.os_thread.join(timeout=5.0)
