"""Lossless trace serialization (save / load round trip).

``Trace.to_json`` is a human-oriented rendering; this module is the
machine format: every identity (recursive :class:`ThreadId` chains,
:class:`LockId`, :class:`ExecIndex`) survives a round trip, so a trace
recorded on one machine can be analyzed offline — detection, pruning and
``Gs`` construction are pure functions of the trace (replay additionally
needs the program).

Format: JSON object ``{"version", "program", "seed", "threads", "locks",
"events"}`` with identity tables (threads/locks referenced by index) to
keep files compact.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    BlockEvent,
    EndEvent,
    JoinEvent,
    NotifyEvent,
    ReleaseEvent,
    SpawnEvent,
    Trace,
    TraceEvent,
    WaitEvent,
)
from repro.util.ids import ExecIndex, LockId, ThreadId

FORMAT_VERSION = 1


def encode_event_fields(ev: TraceEvent, *, thread, lock, index) -> dict:
    """Walk one event's payload through pluggable identity codecs.

    The single source of truth for which fields each event kind carries:
    the table-based machine format (:class:`TraceEncoder`) and the
    human-oriented ``Trace.to_json`` both route through it with different
    ``thread``/``lock``/``index`` codecs, so a new event type (or field)
    cannot silently diverge between the two renderings.
    """
    d: dict = {"kind": type(ev).__name__, "step": ev.step, "thread": thread(ev.thread)}
    if isinstance(ev, SpawnEvent):
        d["child"] = thread(ev.child)
    elif isinstance(ev, JoinEvent):
        d["target"] = thread(ev.target)
    elif isinstance(ev, AcquireEvent):
        d.update(
            lock=lock(ev.lock),
            index=index(ev.index),
            held=[lock(l) for l in ev.held],
            held_indices=[index(ix) for ix in ev.held_indices],
            reentrant=ev.reentrant,
            stack_depth=ev.stack_depth,
        )
    elif isinstance(ev, ReleaseEvent):
        d.update(lock=lock(ev.lock), site=ev.site, reentrant=ev.reentrant)
    elif isinstance(ev, BlockEvent):
        d.update(
            lock=lock(ev.lock),
            index=index(ev.index),
            holder=thread(ev.holder) if ev.holder is not None else None,
        )
    elif isinstance(ev, WaitEvent):
        d.update(condition=ev.condition, lock=lock(ev.lock), site=ev.site)
    elif isinstance(ev, NotifyEvent):
        d.update(
            condition=ev.condition,
            lock=lock(ev.lock),
            site=ev.site,
            woken=ev.woken,
            notify_all=ev.notify_all,
        )
    return d


class TraceEncoder:
    """Assigns table indices to identities while encoding events."""

    def __init__(self) -> None:
        self._threads: Dict[ThreadId, int] = {}
        self._locks: Dict[LockId, int] = {}
        self.thread_rows: List[dict] = []
        self.lock_rows: List[dict] = []

    def thread(self, tid: ThreadId) -> int:
        if tid in self._threads:
            return self._threads[tid]
        parent = self.thread(tid.parent) if tid.parent is not None else None
        idx = len(self.thread_rows)
        self._threads[tid] = idx
        self.thread_rows.append(
            {
                "parent": parent,
                "spawn_site": tid.spawn_site,
                "seq": tid.seq,
                "name": tid.name,
            }
        )
        return idx

    def lock(self, lid: LockId) -> int:
        if lid in self._locks:
            return self._locks[lid]
        owner = self.thread(lid.owner)
        idx = len(self.lock_rows)
        self._locks[lid] = idx
        self.lock_rows.append(
            {
                "owner": owner,
                "create_site": lid.create_site,
                "seq": lid.seq,
                "name": lid.name,
            }
        )
        return idx

    def index(self, ix: ExecIndex) -> list:
        return [self.thread(ix.thread), ix.site, ix.occ]

    def event(self, ev: TraceEvent) -> dict:
        return encode_event_fields(
            ev, thread=self.thread, lock=self.lock, index=self.index
        )


def dump_trace(trace: Trace) -> str:
    """Serialize a trace to a JSON string."""
    enc = TraceEncoder()
    events = [enc.event(ev) for ev in trace.events]
    return json.dumps(
        {
            "version": FORMAT_VERSION,
            "program": trace.program,
            "seed": trace.seed,
            "threads": enc.thread_rows,
            "locks": enc.lock_rows,
            "events": events,
        }
    )


def load_trace(text: str) -> Trace:
    """Reconstruct a :class:`Trace` from :func:`dump_trace` output."""
    doc = json.loads(text)
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {doc.get('version')!r}")

    threads: List[ThreadId] = []
    for row in doc["threads"]:
        parent = threads[row["parent"]] if row["parent"] is not None else None
        threads.append(
            ThreadId(parent, row["spawn_site"], row["seq"], name=row["name"])
        )
    locks: List[LockId] = []
    for row in doc["locks"]:
        locks.append(
            LockId(threads[row["owner"]], row["create_site"], row["seq"], name=row["name"])
        )

    def index(v: list) -> ExecIndex:
        return ExecIndex(threads[v[0]], v[1], v[2])

    trace = Trace(program=doc["program"], seed=doc["seed"])
    for d in doc["events"]:
        kind = d["kind"]
        step, thread = d["step"], threads[d["thread"]]
        if kind == "BeginEvent":
            ev: TraceEvent = BeginEvent(step, thread)
        elif kind == "EndEvent":
            ev = EndEvent(step, thread)
        elif kind == "SpawnEvent":
            ev = SpawnEvent(step, thread, child=threads[d["child"]])
        elif kind == "JoinEvent":
            ev = JoinEvent(step, thread, target=threads[d["target"]])
        elif kind == "AcquireEvent":
            ev = AcquireEvent(
                step,
                thread,
                lock=locks[d["lock"]],
                index=index(d["index"]),
                held=tuple(locks[i] for i in d["held"]),
                held_indices=tuple(index(v) for v in d["held_indices"]),
                reentrant=d["reentrant"],
                stack_depth=d.get("stack_depth", 0),
            )
        elif kind == "ReleaseEvent":
            ev = ReleaseEvent(
                step, thread, lock=locks[d["lock"]], site=d["site"], reentrant=d["reentrant"]
            )
        elif kind == "BlockEvent":
            ev = BlockEvent(
                step,
                thread,
                lock=locks[d["lock"]],
                index=index(d["index"]),
                holder=threads[d["holder"]] if d["holder"] is not None else None,
            )
        elif kind == "WaitEvent":
            ev = WaitEvent(
                step, thread, condition=d["condition"], lock=locks[d["lock"]], site=d["site"]
            )
        elif kind == "NotifyEvent":
            ev = NotifyEvent(
                step,
                thread,
                condition=d["condition"],
                lock=locks[d["lock"]],
                site=d["site"],
                woken=d["woken"],
                notify_all=d["notify_all"],
            )
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        trace.append(ev)
    return trace
