"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` is the fault-injection harness: deterministic
hostile workloads and task functions that drive every path of the
supervision layer (:mod:`repro.core.parallel`) in tests and CI.
"""

from repro.testing.chaos import (  # noqa: F401
    ChaosError,
    ChaosProgram,
    ChaosTarget,
    SimulatedWorkerCrash,
)
