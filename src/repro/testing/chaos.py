"""Fault-injection harness for the supervision layer.

Everything here is deliberately deterministic and picklable so the same
chaos drives both engines: a :class:`ChaosProgram` wraps a benign
deadlock-capable workload and routes *specific detection seeds* to
specific misbehaviors (the seed is read off the live trace, so only the
targeted detection runs are hostile — replay runs use derived seeds and
stay clean):

* ``"raise"``  — emit a couple of trace events, then raise mid-trace;
* ``"hang"``   — go to sleep inside a critical section, holding the lock;
* ``"spin"``   — loop over lock operations until the step budget runs out;
* ``"crash"``  — hard-exit the worker process via ``os._exit``.  When the
  program is running in the parent process (``workers=1`` or a degraded
  engine) the crash is *simulated* instead with
  :class:`SimulatedWorkerCrash`, which carries the ``crashed``
  failure-class marker — taking down the test runner would be a poor way
  to test fault tolerance — so reports classify identically either way.

The module-level task functions at the bottom (:func:`echo_task`,
:func:`failing_task`, :func:`sleeping_task`, :func:`exiting_task`) drive
the engines directly, below the pipeline, for harness-level tests.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Iterable, Optional

from repro.core.parallel import FAILURE_CLASS_ATTR, TaskStatus
from repro.runtime.sim.runtime import SimRuntime


class ChaosError(RuntimeError):
    """The injected workload exception (classifies as ``error``)."""


class SimulatedWorkerCrash(RuntimeError):
    """Stand-in for ``os._exit`` when the program runs in the parent
    process; the marker makes the supervisor classify it ``crashed``."""


setattr(SimulatedWorkerCrash, FAILURE_CLASS_ATTR, TaskStatus.CRASHED.value)


def in_worker_process() -> bool:
    """True when running inside a multiprocessing child (a pool worker)."""
    return multiprocessing.parent_process() is not None


class ChaosTarget:
    """Benign inner workload: a classic AB/BA inversion, so clean seeds
    detect a real cycle and replay can confirm it.  A plain class (not a
    closure) so instances ship to spawn workers."""

    def __init__(self) -> None:
        self.__name__ = "chaos_target"

    def __call__(self, rt: SimRuntime) -> None:
        a = rt.new_lock(name="A", site="chaos:lockA")
        b = rt.new_lock(name="B", site="chaos:lockB")

        def t1() -> None:
            with a.at("chaos:a1"):
                with b.at("chaos:b1"):
                    pass

        def t2() -> None:
            with b.at("chaos:b2"):
                with a.at("chaos:a2"):
                    pass

        h1 = rt.spawn(t1, name="t1", site="chaos:spawn1")
        h2 = rt.spawn(t2, name="t2", site="chaos:spawn2")
        h1.join()
        h2.join()


MODES = ("raise", "hang", "spin", "crash")


class ChaosProgram:
    """Wrap ``inner`` and misbehave on selected detection seeds.

    ``faults`` maps seed → mode (one of :data:`MODES`).  Alternatively
    pass ``mode=`` with ``seeds=None`` to misbehave on *every* run.  All
    other seeds execute the inner workload untouched.
    """

    def __init__(
        self,
        faults: Optional[Dict[int, str]] = None,
        *,
        mode: Optional[str] = None,
        seeds: Optional[Iterable[int]] = None,
        inner=None,
        hang_s: float = 60.0,
        exit_code: int = 17,
    ) -> None:
        if faults is None:
            if mode is None:
                raise ValueError("pass a faults mapping or mode=")
            faults = dict.fromkeys(seeds, mode) if seeds is not None else None
        self.faults = faults  # None: `mode` applies to every seed
        self.mode = mode
        for m in (self.faults or {}).values():
            if m not in MODES:
                raise ValueError(f"unknown chaos mode {m!r} (choose from {MODES})")
        if self.faults is None and mode not in MODES:
            raise ValueError(f"unknown chaos mode {mode!r} (choose from {MODES})")
        self.inner = inner if inner is not None else ChaosTarget()
        self.hang_s = hang_s
        self.exit_code = exit_code
        self.__name__ = "chaos_program"

    def _mode_for(self, rt: SimRuntime) -> Optional[str]:
        if self.faults is None:
            return self.mode
        return self.faults.get(rt.trace.seed)

    def __call__(self, rt: SimRuntime) -> None:
        mode = self._mode_for(rt)
        if mode is None:
            self.inner(rt)
        elif mode == "raise":
            self._raise(rt)
        elif mode == "hang":
            self._hang(rt)
        elif mode == "spin":
            self._spin(rt)
        else:
            self._crash(rt)

    # -- injections --------------------------------------------------------

    def _raise(self, rt: SimRuntime) -> None:
        lock = rt.new_lock(name="chaos", site="chaos:mid")
        with lock.at("chaos:mid-acq"):  # a partial trace precedes the blast
            pass
        raise ChaosError(f"injected workload failure (seed {rt.trace.seed})")

    def _hang(self, rt: SimRuntime) -> None:
        lock = rt.new_lock(name="chaos", site="chaos:critical")
        with lock.at("chaos:critical-acq"):
            # Real wall-clock hang while holding the lock: invisible to the
            # scheduler (no sync op), only a deadline guard can catch it.
            time.sleep(self.hang_s)

    def _spin(self, rt: SimRuntime) -> None:
        lock = rt.new_lock(name="chaos", site="chaos:spin")
        while True:  # every iteration costs scheduler steps -> STEP_LIMIT
            with lock.at("chaos:spin-acq"):
                pass

    def _crash(self, rt: SimRuntime) -> None:
        if in_worker_process():
            os._exit(self.exit_code)
        raise SimulatedWorkerCrash(
            f"hard worker exit (seed {rt.trace.seed}) simulated in-process"
        )


# ---------------------------------------------------------------------------
# Engine-level chaos tasks (picklable module-level functions)
# ---------------------------------------------------------------------------


def echo_task(x):
    """Well-behaved task: returns its argument."""
    return x


def failing_task(x):
    """Always raises (classifies ``error``)."""
    raise ChaosError(f"failing_task({x!r})")


def sleeping_task(seconds: float):
    """Outsleeps any reasonable deadline (classifies ``timeout``)."""
    time.sleep(seconds)
    return seconds


def exiting_task(code: int):
    """Kills the worker process (classifies ``crashed``); simulated via
    :class:`SimulatedWorkerCrash` when run in the parent process."""
    if in_worker_process():
        os._exit(code)
    raise SimulatedWorkerCrash(f"exiting_task({code}) simulated in-process")
