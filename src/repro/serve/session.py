"""Per-stream ingestion state: decode → detect → spool → journal.

One :class:`StreamSession` exists per stream id for the lifetime of a
run.  Bytes arriving from the producer are (in order) appended to the
stream's spool file, pushed through the incremental
:class:`~repro.runtime.tracefile.ChunkDecoder`, and the decoded events
fed to the stream's own :class:`~repro.core.streaming.StreamingDetector`.
Every time the decoder crosses a ``.wtrc`` chunk boundary the spool is
fsynced and the boundary journaled — the invariant crash recovery leans
on: *journaled bytes are durable, chunk-aligned, and re-feeding them
reproduces the detector state exactly*.

Sessions move through ``ACTIVE`` (connection attached), ``PARKED``
(producer went away before FIN; resumable), and the terminal states
``COMPLETE`` and ``QUARANTINED``.  Quarantine moves the spool into
``quarantine/`` alongside a ``<id>.reason.json`` record carrying the
taxonomy code — the same codes the corpus validator uses for on-disk
corpora (:mod:`repro.corpus.validate`), extended with the daemon's
transport-level codes below.
"""

from __future__ import annotations

import enum
import json
import os
from typing import BinaryIO, Optional

from repro.core.streaming import StreamingDetector
from repro.corpus.manifest import DETECTOR_PARAMS, sha256_file
from repro.corpus.validate import classify_decode_error
from repro.runtime.tracefile import ChunkDecoder
from repro.serve.journal import RunJournal
from repro.serve.report import defect_report_doc

# Transport-level quarantine codes (the decode-level ones — "torn",
# "unreadable", "corrupt-payload", "oversized-chunk" — come from
# repro.corpus.validate's shared taxonomy).
IDLE_TIMEOUT = "idle-timeout"
ABORTED = "aborted"
DUPLICATE_STREAM = "duplicate-stream"
FLOW_VIOLATION = "flow-violation"
OVERSIZED_STREAM = "oversized-stream"


class SessionState(enum.Enum):
    ACTIVE = "active"
    PARKED = "parked"
    COMPLETE = "complete"
    QUARANTINED = "quarantined"


class StreamSession:
    """Ingestion state for one stream id."""

    def __init__(
        self,
        stream_id: str,
        run_dir: str,
        journal: RunJournal,
        *,
        max_length: int = DETECTOR_PARAMS["max_length"],
        max_cycles: int = DETECTOR_PARAMS["max_cycles"],
        max_chunk_bytes: Optional[int] = None,
        max_stream_bytes: Optional[int] = None,
        shard: bool = False,
        backend: str = "python",
    ) -> None:
        self.stream_id = stream_id
        self.run_dir = run_dir
        self.journal = journal
        self.max_length = max_length
        self.max_cycles = max_cycles
        self.max_stream_bytes = max_stream_bytes
        self.shard = shard
        self.backend = backend
        self.state = SessionState.ACTIVE
        # shard=True defers cycle enumeration to finalize(), where it fans
        # out through the supervised pool (output-identical per the
        # sharding gates, so the byte-identity property still holds).
        if backend == "native":
            # Resolved by the server at startup: one decoder/detector pair
            # sharing a per-stream kernel context; reports stay
            # byte-identical to the pure path (differential suite).
            from repro.core.nativekernel import (
                NativeChunkDecoder,
                NativeStreamingDetector,
                _Kernel,
            )

            kernel = _Kernel()
            self.decoder = NativeChunkDecoder(
                kernel, max_chunk_bytes=max_chunk_bytes
            )
            self.detector = NativeStreamingDetector(
                kernel,
                self.decoder,
                max_length=max_length,
                max_cycles=max_cycles,
                shard_cycles=shard,
            )
        else:
            self.decoder = ChunkDecoder(max_chunk_bytes=max_chunk_bytes)
            self.detector = StreamingDetector(
                max_length=max_length, max_cycles=max_cycles, shard_cycles=shard
            )
        self.spool_path = os.path.join(run_dir, "spool", f"{stream_id}.wtrc")
        self._spool: Optional[BinaryIO] = None
        #: Last chunk boundary made durable (spool fsync + journal line).
        self.journaled_bytes = 0
        #: Events decoded and fed so far.
        self.events_fed = 0
        #: Sealed manifest row once terminal.
        self.row: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------------

    def open_fresh(self) -> None:
        os.makedirs(os.path.dirname(self.spool_path), exist_ok=True)
        self._spool = open(self.spool_path, "wb")

    def open_resumed(self, durable_bytes: int) -> None:
        """Reattach after a daemon restart (or producer reconnect).

        The spool is truncated to the journaled chunk boundary — bytes
        past it were never journaled, so the producer re-sends them —
        and the durable prefix is re-fed through fresh decoder/detector
        state, which reproduces the pre-crash analysis exactly.
        """
        os.makedirs(os.path.dirname(self.spool_path), exist_ok=True)
        prefix = b""
        if os.path.exists(self.spool_path):
            with open(self.spool_path, "rb") as fh:
                prefix = fh.read(durable_bytes)
        if len(prefix) < durable_bytes:
            raise ValueError(
                f"spool for {self.stream_id!r} shorter than journal "
                f"({len(prefix)} < {durable_bytes})"
            )
        self._spool = open(self.spool_path, "wb")
        self._spool.write(prefix)
        self._spool.flush()
        if prefix:
            before_events = self.decoder.events_read
            events = self.decoder.push(prefix)
            if events:
                self.detector.feed_many(events)
            # Counted from the decoder (not len(events)): the native
            # decoder consumes events inside the kernel and returns none.
            self.events_fed += self.decoder.events_read - before_events
        if self.decoder.bytes_consumed != durable_bytes:
            raise ValueError(
                f"journal for {self.stream_id!r} is not chunk-aligned "
                f"({self.decoder.bytes_consumed} != {durable_bytes})"
            )
        self.journaled_bytes = durable_bytes

    # -- ingestion -----------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Partial-chunk residue counted against backpressure budgets."""
        return self.decoder.buffered

    @property
    def total_bytes(self) -> int:
        return self.decoder.bytes_consumed + self.decoder.buffered

    def ingest(self, data: bytes) -> int:
        """Consume one DATA payload; returns events fed.

        Raises whatever the decoder raises on hostile bytes — the server
        classifies via the shared taxonomy — and ``ValueError`` tagged
        :data:`OVERSIZED_STREAM` when the stream exceeds its byte budget.
        """
        assert self._spool is not None, "session not opened"
        if (
            self.max_stream_bytes is not None
            and self.total_bytes + len(data) > self.max_stream_bytes
        ):
            raise StreamTooLarge(
                f"stream exceeds {self.max_stream_bytes} bytes"
            )
        self._spool.write(data)
        self._spool.flush()
        before = self.decoder.bytes_consumed
        before_events = self.decoder.events_read
        events = self.decoder.push(data)
        if events:
            self.detector.feed_many(events)
        fed = self.decoder.events_read - before_events
        self.events_fed += fed
        if self.decoder.bytes_consumed > before:
            # Durable checkpoint: spool first, then the journal line that
            # vouches for it.
            os.fsync(self._spool.fileno())
            self.journaled_bytes = self.decoder.bytes_consumed
            self.journal.chunk(self.stream_id, self.journaled_bytes)
        return fed

    # -- termination ---------------------------------------------------------

    def finalize(self, shard_engine=None, policy=None) -> dict:
        """Seal a completed stream: report doc + journaled manifest row.

        With ``shard=True`` and a ``shard_engine``, cycle enumeration fans
        out through the supervised pool via the zero-copy hand-off (the
        sealed spool file plus the decoder's recorded chunk spans).
        """
        assert self.decoder.complete, "finalize() before END chunk"
        self._close_spool()
        if self.shard:
            detection = self.detector.finish(
                shard_engine=shard_engine,
                policy=policy,
                trace_path=self.spool_path,
                chunk_spans=tuple(self.decoder.event_spans),
            )
        else:
            detection = self.detector.finish()
        doc = defect_report_doc(
            detection,
            program=self.decoder.program,
            seed=self.decoder.seed,
            events=self.detector.events_seen,
            max_length=self.max_length,
            max_cycles=self.max_cycles,
            trace_path=self.spool_path,
        )
        self.state = SessionState.COMPLETE
        return doc

    def seal_complete(self, report_name: str, report_sha: str, doc: dict) -> dict:
        self.row = {
            "stream": self.stream_id,
            "status": "analyzed",
            "program": doc["program"],
            "seed": doc["seed"],
            "events": doc["events"],
            "defect_keys": len(doc["defect_keys"]),
            "replay_candidates": doc["replay_candidates"],
            "report": report_name,
            "sha256": report_sha,
        }
        self.journal.complete(self.stream_id, self.row)
        return self.row

    def quarantine(self, code: str, detail: str) -> dict:
        """Move the spool (if any) into quarantine/ with a reason record."""
        self._close_spool()
        qdir = os.path.join(self.run_dir, "quarantine")
        os.makedirs(qdir, exist_ok=True)
        evidence = None
        if os.path.exists(self.spool_path) and os.path.getsize(self.spool_path):
            evidence = os.path.join("quarantine", f"{self.stream_id}.wtrc")
            os.replace(self.spool_path, os.path.join(self.run_dir, evidence))
        reason = {
            "stream": self.stream_id,
            "code": code,
            "detail": detail,
            "bytes_ingested": self.journaled_bytes,
            "events_fed": self.events_fed,
            "evidence": evidence,
        }
        with open(
            os.path.join(qdir, f"{self.stream_id}.reason.json"), "w"
        ) as fh:
            json.dump(reason, fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.row = {
            "stream": self.stream_id,
            "status": "quarantined",
            "code": code,
            "detail": detail,
            "events": self.events_fed,
            "evidence": evidence,
        }
        self.state = SessionState.QUARANTINED
        self.journal.quarantine(self.stream_id, self.row)
        return self.row

    def park(self) -> None:
        """Producer went away before FIN: resumable, not yet condemned."""
        self._close_spool()
        self.state = SessionState.PARKED

    def _close_spool(self) -> None:
        if self._spool is not None:
            self._spool.flush()
            try:
                os.fsync(self._spool.fileno())
            except OSError:  # pragma: no cover - spool is a real file
                pass
            self._spool.close()
            self._spool = None

    def spool_sha256(self) -> str:
        return sha256_file(self.spool_path)


class StreamTooLarge(ValueError):
    """A stream exceeded its configured byte budget."""


def classify_ingest_error(exc: BaseException):
    """Taxonomy code + detail for an :meth:`StreamSession.ingest` failure."""
    if isinstance(exc, StreamTooLarge):
        return OVERSIZED_STREAM, str(exc)
    corruption = classify_decode_error(exc)
    return corruption.code, corruption.detail
