"""Deterministic fleet-wide defect rollups.

A rollup merges per-stream ``wolf-defect-report/2`` documents — from one
run directory, from every worker of a fleet, or from a heap of past runs
— into one ``wolf-fleet-rollup/1`` document: defect-key counts, verdict
totals, and per-program hit rates.

The determinism contract (same discipline as the PR 1 parallel merge):
the rollup is a pure function of the *set* of report documents.  Worker
count, arrival order, directory layout, crash/restart history — none of
it can change a byte of the output.  That holds because every aggregate
here is computed from unordered counts and rendered with sorted keys,
and stream ids (unique fleet-wide) are the only join key.  The
N-worker-vs-1-worker byte-identity test pins this.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.serve.report import render_report

ROLLUP_SCHEMA = "wolf-fleet-rollup/1"


def collect_report_docs(run_dir: str) -> List[Tuple[str, dict]]:
    """Every per-stream report under ``run_dir``, as (stream_id, doc).

    Understands both layouts: a single daemon run directory
    (``reports/*.json``) and a fleet directory (``workers/w*/reports/``).
    """
    patterns = [
        os.path.join(run_dir, "reports", "*.json"),
        os.path.join(run_dir, "workers", "w*", "reports", "*.json"),
    ]
    out: List[Tuple[str, dict]] = []
    for pattern in patterns:
        for path in glob.glob(pattern):
            stream_id = os.path.splitext(os.path.basename(path))[0]
            with open(path, encoding="utf-8") as fh:
                out.append((stream_id, json.load(fh)))
    return out


def rollup_reports(named_docs: Iterable[Tuple[str, dict]]) -> dict:
    """Merge (stream_id, report_doc) pairs into one rollup document.

    Duplicate stream ids keep the first occurrence after sorting — the
    same report can legitimately appear via overlapping run-dir globs,
    and a deterministic tie-break keeps the output stable.
    """
    docs: Dict[str, dict] = {}
    for stream_id, doc in sorted(named_docs, key=lambda p: p[0]):
        docs.setdefault(stream_id, doc)

    key_counts: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    prediction = {"certified": 0, "refuted": 0, "undecided": 0}
    programs: Dict[str, dict] = {}
    events = 0
    cycles = 0
    truncated = 0
    for doc in docs.values():
        events += int(doc.get("events", 0))
        cycles += int(doc.get("cycles", 0))
        truncated += bool(doc.get("truncated", False))
        keys = ["|".join(k) for k in doc.get("defect_keys", [])]
        for key in keys:
            key_counts[key] = key_counts.get(key, 0) + 1
        for dec in doc.get("decisions", []):
            v = dec.get("verdict", "unknown")
            verdicts[v] = verdicts.get(v, 0) + 1
            pv = dec.get("prediction")
            if pv in prediction:
                prediction[pv] += 1
        prog = str(doc.get("program", ""))
        row = programs.setdefault(
            prog,
            {"streams": 0, "with_defects": 0, "events": 0, "keys": set()},
        )
        row["streams"] += 1
        row["with_defects"] += bool(keys)
        row["events"] += int(doc.get("events", 0))
        row["keys"].update(keys)

    program_rows = {}
    for prog, row in sorted(programs.items()):
        program_rows[prog] = {
            "streams": row["streams"],
            "with_defects": row["with_defects"],
            "hit_rate": round(row["with_defects"] / row["streams"], 6),
            "events": row["events"],
            "distinct_defect_keys": len(row["keys"]),
        }

    return {
        "schema": ROLLUP_SCHEMA,
        "streams": {
            "analyzed": len(docs),
            "events": events,
            "cycles": cycles,
            "truncated": truncated,
        },
        "defect_keys": dict(sorted(key_counts.items())),
        "verdicts": dict(sorted(verdicts.items())),
        "prediction": prediction,
        "programs": program_rows,
        "totals": {
            "defect_hits": sum(key_counts.values()),
            "distinct_defect_keys": len(key_counts),
        },
    }


def rollup_run_dirs(run_dirs: Sequence[str]) -> dict:
    """Rollup across several run directories (fleet or standalone)."""
    named: List[Tuple[str, dict]] = []
    for d in run_dirs:
        named.extend(collect_report_docs(d))
    return rollup_reports(named)


def render_rollup(doc: dict) -> bytes:
    """Canonical bytes — same rendering contract as defect reports."""
    return render_report(doc)
