"""The ``wolf serve`` asyncio daemon: accept → ingest → detect → drain.

One :class:`WolfServer` owns one *run directory*::

    out/
      journal.jsonl          crash-recovery journal (fsynced JSONL)
      spool/<id>.wtrc        raw stream bytes as received
      reports/<id>.json      per-stream defect reports (canonical bytes)
      quarantine/<id>.wtrc   evidence + <id>.reason.json taxonomy records
      run_manifest.json      sealed at drain: every stream accounted for

Robustness properties, each enforced here and proven by the chaos suite:

* **Slow-loris defense** — every read carries the idle deadline; a silent
  producer is evicted and quarantined ``idle-timeout``.
* **Bounded memory** — credit-based flow control: at most ``window``
  unprocessed bytes per stream in flight, and replenishment credits are
  withheld whenever the global partial-chunk residue exceeds
  ``max_total_buffer``, so hostile producers stall themselves, not the
  healthy streams next to them.
* **Deterministic failure classification** — hostile bytes classify
  through the same corruption taxonomy the corpus validator uses, at any
  worker count, on any connection interleaving.
* **Crash recovery** — ``kill -9`` then restart: completed streams are
  never re-analyzed (their journaled rows rebuild the manifest), and
  partially-ingested streams resume from the last journaled chunk
  boundary.
* **Graceful drain** — SIGTERM/SIGINT stops accepting, settles every
  stream into a terminal state, seals ``run_manifest.json``, exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.corpus.manifest import DETECTOR_PARAMS, sha256_file
from repro.serve.health import ServeStats
from repro.serve.journal import JOURNAL_NAME, JournalState, RunJournal
from repro.serve.protocol import (
    DEFAULT_WINDOW,
    PROTOCOL_VERSION,
    Frame,
    FrameKind,
    ProtocolError,
    TornFrame,
    encode_json_frame,
    read_frame,
    recv_frame_sync,
    redirect_doc,
    shard_of,
)
from repro.serve.report import render_report
from repro.serve.session import (
    ABORTED,
    DUPLICATE_STREAM,
    FLOW_VIOLATION,
    IDLE_TIMEOUT,
    SessionState,
    StreamSession,
    classify_ingest_error,
)

RUN_SCHEMA = "wolf-serve-run/1"
RUN_MANIFEST_NAME = "run_manifest.json"
#: Per-worker endpoint advertisement (direct addresses for redirects).
ENDPOINT_NAME = "endpoint.json"

_STREAM_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


def reuseport_available() -> bool:
    """Can this platform share one TCP port across worker processes?"""
    import socket as socketlib

    return hasattr(socketlib, "SO_REUSEPORT")


def _reuseport_socket(host: str, port: int):
    """A bound listening socket with SO_REUSEPORT set (kernel balances
    accepts across every worker bound to the same port)."""
    import socket as socketlib

    sock = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM)
    try:
        sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass
class ServeConfig:
    """Daemon knobs (each limit names the failure mode it bounds)."""

    out_dir: str
    socket_path: Optional[str] = None
    tcp: Optional[Tuple[str, int]] = None
    max_length: int = DETECTOR_PARAMS["max_length"]
    max_cycles: int = DETECTOR_PARAMS["max_cycles"]
    #: Seconds of producer silence before eviction (slow-loris defense).
    idle_timeout: float = 30.0
    #: Per-stream credit window: bytes in flight before the producer must
    #: wait for replenishment.
    window: int = DEFAULT_WINDOW
    #: Global cap on partial-chunk residue across all streams; beyond it
    #: credit replenishment is withheld until capacity frees.
    max_total_buffer: int = 8 * 1024 * 1024
    #: Largest single ``.wtrc`` chunk a stream may declare.
    max_chunk_bytes: int = 1 << 20
    #: Largest whole stream accepted (None = unbounded).
    max_stream_bytes: Optional[int] = 64 * 1024 * 1024
    #: Worker processes for sharded cycle enumeration at stream finish
    #: (1 = enumerate in the event-loop process).
    shard_workers: int = 1
    #: fsync the journal on every append (tests may disable for speed).
    journal_fsync: bool = True
    #: Rotate (compact) the journal once an append pushes it past this
    #: size; ``None`` disables rotation.  The default bounds journal
    #: growth across long runs and daemon restarts without ever rotating
    #: in short test runs.
    journal_max_bytes: Optional[int] = 32 * 1024 * 1024
    #: This process's shard index in a multi-worker fleet (0-based); with
    #: ``num_workers == 1`` the daemon owns every stream (the historical
    #: single-process mode).
    worker_index: int = 0
    #: Total ingestion worker processes in the fleet this daemon belongs
    #: to.  A HELLO for a stream id hashing to a different worker is
    #: answered with a ``wrong-worker`` redirect instead of a session.
    num_workers: int = 1
    #: The fleet's top-level run directory (where ``fleet.json`` and the
    #: sibling workers' run dirs live); required when ``num_workers > 1``
    #: so redirects can name the owner's direct addresses.
    fleet_dir: Optional[str] = None
    #: Bind the TCP listener with SO_REUSEPORT so every worker in the
    #: fleet can share one public port (the kernel balances accepts).
    tcp_reuseport: bool = False
    #: Analysis backend for per-stream sessions: ``"python"``,
    #: ``"native"`` (compiled kernel; startup fails if it cannot load) or
    #: ``"auto"`` — resolved once at :meth:`WolfServer.start`, so every
    #: session in a run uses the same backend and the manifest can
    #: attribute it.  Reports are byte-identical either way.
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.socket_path is None and self.tcp is None:
            raise ValueError("ServeConfig needs a unix socket path or a TCP address")
        if self.idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be > 0, got {self.idle_timeout}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.shard_workers < 1:
            raise ValueError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        if self.backend not in ("python", "native", "auto"):
            raise ValueError(
                f"backend must be 'python', 'native' or 'auto', got {self.backend!r}"
            )
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if not 0 <= self.worker_index < self.num_workers:
            raise ValueError(
                f"worker_index {self.worker_index} outside fleet of "
                f"{self.num_workers}"
            )
        if self.num_workers > 1 and self.fleet_dir is None:
            raise ValueError("a multi-worker ServeConfig needs fleet_dir")


class WolfServer:
    """One ingestion run: many producer connections, one sealed manifest."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.stats = ServeStats(
            worker_index=config.worker_index, num_workers=config.num_workers
        )
        #: stream id -> session, for every stream this incarnation saw.
        self.sessions: Dict[str, StreamSession] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._drain_done: Optional[asyncio.Event] = None
        self._rejected: List[dict] = []
        self._journal: Optional[RunJournal] = None
        self._recovered = JournalState()
        self._shard_engine = None
        #: Streams whose credit replenishment is deferred until global
        #: buffer capacity frees: stream id -> (writer, owed bytes).
        self._owed: Dict[str, Tuple[asyncio.StreamWriter, int]] = {}
        self.tcp_address: Optional[Tuple[str, int]] = None
        #: Concrete backend every session runs with ("python"/"native"),
        #: resolved once in :meth:`start`.
        self.backend: str = "python"

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        from repro.core.nativekernel import resolve_backend

        # Resolve once, before accepting: backend="native" with no kernel
        # must fail startup, not the first stream.
        self.backend = resolve_backend(cfg.backend)
        for sub in ("spool", "reports", "quarantine"):
            os.makedirs(os.path.join(cfg.out_dir, sub), exist_ok=True)
        journal_path = os.path.join(cfg.out_dir, JOURNAL_NAME)
        # Crash recovery: journaled terminal rows survive as-is (no
        # re-analysis); journaled partial streams await reconnection.
        self._recovered = RunJournal.load_state(journal_path)
        self._rejected = list(self._recovered.rejected)
        self._journal = RunJournal(
            journal_path,
            fsync=cfg.journal_fsync,
            max_bytes=cfg.journal_max_bytes,
        )
        self._drain_requested = asyncio.Event()
        self._drain_done = asyncio.Event()
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(self._on_connection, cfg.socket_path)
            )
        if cfg.tcp is not None:
            host, port = cfg.tcp
            if cfg.tcp_reuseport:
                srv = await asyncio.start_server(
                    self._on_connection, sock=_reuseport_socket(host, port)
                )
            else:
                srv = await asyncio.start_server(self._on_connection, host, port)
            self._servers.append(srv)
            if srv.sockets:
                addr = srv.sockets[0].getsockname()
                self.tcp_address = (addr[0], addr[1])
        if cfg.fleet_dir is not None:
            # Advertise this worker's direct addresses for redirects and
            # supervisor probes (readiness is "endpoint.json names my
            # pid", so even a one-worker fleet writes it).  Written after
            # the listeners are bound so the file always names live
            # endpoints.
            self._write_endpoint()

    def _write_endpoint(self) -> None:
        cfg = self.config
        # A reuseport-shared TCP port is NOT a direct address — a
        # redirected client reconnecting there would land on an arbitrary
        # worker again — so only a private TCP listener is advertised.
        direct_tcp = (
            self.tcp_address
            if self.tcp_address and not cfg.tcp_reuseport
            else None
        )
        doc = {
            "worker": cfg.worker_index,
            "pid": os.getpid(),
            "socket": os.path.abspath(cfg.socket_path)
            if cfg.socket_path
            else None,
            "tcp": list(direct_tcp) if direct_tcp else None,
        }
        path = os.path.join(cfg.out_dir, ENDPOINT_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _owner_endpoint(self, owner: int) -> dict:
        """Best-effort direct addresses of the sibling worker ``owner``.

        Reads the owner's ``endpoint.json`` fresh on every redirect — a
        restarted worker rewrites it with new addresses, and redirects
        are once-per-misrouted-stream, not per-frame.  Falls back to the
        owner's well-known unix socket path when the file is not there
        yet (the owner may still be starting up)."""
        assert self.config.fleet_dir is not None
        wdir = os.path.join(self.config.fleet_dir, "workers", f"w{owner}")
        try:
            with open(os.path.join(wdir, ENDPOINT_NAME)) as fh:
                doc = json.load(fh)
            return {
                "socket": doc.get("socket"),
                "tcp": tuple(doc["tcp"]) if doc.get("tcp") else None,
            }
        except (OSError, ValueError, KeyError):
            return {
                "socket": os.path.join(wdir, "worker.sock"),
                "tcp": None,
            }

    @property
    def accepting(self) -> bool:
        return bool(self._servers) and not self._draining

    def request_drain(self) -> None:
        """Signal-handler entry point: idempotent, non-blocking."""
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(self) -> None:
        """Serve until a drain is requested, then drain and return."""
        await self.start()
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, settle every stream, seal the manifest."""
        if self._draining:
            assert self._drain_done is not None
            await self._drain_done.wait()
            return
        self._draining = True
        self.stats.draining = True
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        self._servers = []
        # Active connections: cancel; each handler settles its in-flight
        # session as `aborted` on the way out.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # Parked sessions (producer vanished mid-stream, never returned)
        # and recovered-but-never-reattached partial streams: the run is
        # over, so they settle as aborted.
        for _sid, sess in sorted(self.sessions.items()):
            if sess.state is SessionState.PARKED:
                sess.quarantine(
                    ABORTED, "stream never completed (daemon drained before FIN)"
                )
                self.stats.note_quarantine(ABORTED)
        for sid, nbytes in sorted(self._recovered.resumable().items()):
            if sid in self.sessions:
                continue
            sess = self._make_session(sid)
            sess.journaled_bytes = nbytes
            sess.quarantine(
                ABORTED,
                "stream never completed (daemon drained before reconnection)",
            )
            self.stats.note_quarantine(ABORTED)
            self.sessions[sid] = sess
        if self._shard_engine is not None:
            self._shard_engine.close()
            self._shard_engine = None
        self._write_manifest()
        if self._journal is not None:
            self._journal.close()
        if (
            self.config.socket_path is not None
            and os.path.exists(self.config.socket_path)
        ):
            os.unlink(self.config.socket_path)
        assert self._drain_done is not None
        self._drain_done.set()

    # -- manifest ------------------------------------------------------------

    def _manifest_rows(self) -> List[dict]:
        rows: Dict[str, dict] = {}
        rows.update(self._recovered.completed)
        rows.update(self._recovered.quarantined)
        for sid, sess in self.sessions.items():
            if sess.row is not None:
                rows[sid] = sess.row
        return [rows[sid] for sid in sorted(rows)]

    def _write_manifest(self) -> None:
        rows = self._manifest_rows()
        analyzed = [r for r in rows if r["status"] == "analyzed"]
        quarantined = [r for r in rows if r["status"] == "quarantined"]
        from repro.core.nativekernel import kernel_version

        doc = {
            "schema": RUN_SCHEMA,
            "drained": True,
            "detector": {
                "max_length": self.config.max_length,
                "max_cycles": self.config.max_cycles,
                "backend": self.backend,
                "kernel": kernel_version() if self.backend == "native" else None,
            },
            "streams": rows,
            "rejected": sorted(
                self._rejected, key=lambda r: (r["stream"], r["code"])
            ),
            "totals": {
                "streams": len(rows),
                "analyzed": len(analyzed),
                "quarantined": len(quarantined),
                "rejected": len(self._rejected),
                "events": sum(r.get("events", 0) for r in analyzed),
                "defect_keys": sum(r.get("defect_keys", 0) for r in analyzed),
            },
        }
        path = os.path.join(self.config.out_dir, RUN_MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- connection plumbing -------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _read(self, reader: asyncio.StreamReader) -> Optional[Frame]:
        """One frame under the idle deadline (the slow-loris defense)."""
        return await asyncio.wait_for(
            read_frame(reader), timeout=self.config.idle_timeout
        )

    async def _send(
        self, writer: asyncio.StreamWriter, kind: FrameKind, doc: dict
    ) -> None:
        writer.write(encode_json_frame(kind, doc))
        await writer.drain()

    async def _reject(
        self,
        writer: asyncio.StreamWriter,
        stream_id: str,
        code: str,
        detail: str,
    ) -> None:
        record = {"stream": stream_id, "code": code, "detail": detail}
        self._rejected.append(record)
        self.stats.rejected += 1
        if self._journal is not None:
            self._journal.reject(stream_id, code, detail)
        await self._send(writer, FrameKind.ERR, {"code": code, "detail": detail})

    def _make_session(self, stream_id: str) -> StreamSession:
        assert self._journal is not None
        return StreamSession(
            stream_id,
            self.config.out_dir,
            self._journal,
            max_length=self.config.max_length,
            max_cycles=self.config.max_cycles,
            max_chunk_bytes=self.config.max_chunk_bytes,
            max_stream_bytes=self.config.max_stream_bytes,
            shard=self.config.shard_workers > 1,
            backend=self.backend,
        )

    # -- backpressure --------------------------------------------------------

    def _buffered_total(self) -> int:
        total = sum(
            s.buffered
            for s in self.sessions.values()
            if s.state is SessionState.ACTIVE
        )
        self.stats.buffered_bytes = total
        return total

    async def _grant_credit(
        self, session: StreamSession, writer: asyncio.StreamWriter, n: int
    ) -> int:
        """Replenish ``n`` bytes of credit, or withhold under pressure."""
        if self._buffered_total() > self.config.max_total_buffer:
            _, owed = self._owed.get(session.stream_id, (writer, 0))
            self._owed[session.stream_id] = (writer, owed + n)
            self.stats.credits_withheld += 1
            return 0
        await self._send(writer, FrameKind.CREDIT, {"credit": n})
        return n

    async def _flush_owed(self) -> None:
        """Grant deferred credits now that buffer capacity freed."""
        for sid in list(self._owed):
            if self._buffered_total() > self.config.max_total_buffer:
                return
            entry = self._owed.pop(sid, None)
            if entry is None:
                continue
            writer, owed = entry
            sess = self.sessions.get(sid)
            if (
                sess is None
                or sess.state is not SessionState.ACTIVE
                or writer.is_closing()
            ):
                continue
            try:
                await self._send(writer, FrameKind.CREDIT, {"credit": owed})
            except (ConnectionError, RuntimeError):  # producer went away
                continue

    # -- the per-connection state machine ------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        # The holder lets cleanup find the session this connection was
        # serving even when cancellation (drain) or a handler bug unwinds
        # the stack mid-stream.
        holder: List[Optional[StreamSession]] = [None]
        try:
            await self._serve_connection(reader, writer, holder)
        except asyncio.CancelledError:
            pass  # drain cancelled us; settle below
        except Exception:
            # Zero-unhandled-exceptions backstop: a bug in the handler
            # must cost one connection, never the daemon.
            self.stats.internal_errors += 1
        finally:
            session = holder[0]
            if session is not None and session.state is SessionState.ACTIVE:
                session.quarantine(
                    ABORTED,
                    "stream never completed (connection settled mid-stream)",
                )
                self.stats.note_quarantine(ABORTED)
                self.stats.streams_active -= 1
                self._owed.pop(session.stream_id, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        holder: List[Optional[StreamSession]],
    ) -> None:
        cfg = self.config
        try:
            frame = await self._read(reader)
        except (asyncio.TimeoutError, ProtocolError, ConnectionError):
            return
        if frame is None:
            return
        if frame.kind is FrameKind.CONTROL:
            await self._serve_control(frame, writer)
            return
        if frame.kind is not FrameKind.HELLO:
            await self._send(
                writer,
                FrameKind.ERR,
                {"code": FLOW_VIOLATION, "detail": "expected HELLO"},
            )
            return
        try:
            hello = frame.json()
        except ProtocolError as exc:
            await self._send(
                writer, FrameKind.ERR, {"code": FLOW_VIOLATION, "detail": str(exc)}
            )
            return
        stream_id = str(hello.get("stream", ""))
        if not _STREAM_ID_RE.match(stream_id):
            await self._reject(
                writer,
                stream_id or "<empty>",
                FLOW_VIOLATION,
                "invalid stream id (want [A-Za-z0-9_.-]{1,64})",
            )
            return
        if hello.get("v") != PROTOCOL_VERSION:
            await self._reject(
                writer,
                stream_id,
                FLOW_VIOLATION,
                f"unsupported protocol version {hello.get('v')!r}",
            )
            return
        if cfg.num_workers > 1:
            owner = shard_of(stream_id, cfg.num_workers)
            if owner != cfg.worker_index:
                # Not ours: the stream's journal segment lives with the
                # owning worker, so answer with the owner's direct
                # addresses and close.  Deliberately NOT journaled — a
                # redirect carries no durable state, and journaling it
                # would make crash-run manifests diverge from clean runs.
                self.stats.redirects += 1
                ep = self._owner_endpoint(owner)
                await self._send(
                    writer,
                    FrameKind.ERR,
                    redirect_doc(
                        owner, socket_path=ep["socket"], tcp=ep["tcp"]
                    ),
                )
                return
        if self._draining:
            await self._send(
                writer,
                FrameKind.ERR,
                {"code": "draining", "detail": "daemon is draining"},
            )
            return

        # Duplicate / resume arbitration.
        existing = self.sessions.get(stream_id)
        if existing is not None and existing.state is SessionState.ACTIVE:
            await self._reject(
                writer,
                stream_id,
                DUPLICATE_STREAM,
                "stream id already active on another connection",
            )
            return
        settled = existing is not None and existing.state in (
            SessionState.COMPLETE,
            SessionState.QUARANTINED,
        )
        if settled or self._recovered.terminal(stream_id):
            await self._reject(
                writer,
                stream_id,
                DUPLICATE_STREAM,
                "stream id already settled in this run",
            )
            return
        if existing is not None and existing.state is SessionState.PARKED:
            resume_offset = existing.journaled_bytes
        else:
            resume_offset = self._recovered.resumable().get(stream_id, 0)

        session = self._make_session(stream_id)
        try:
            if resume_offset:
                session.open_resumed(resume_offset)
                self.stats.streams_resumed += 1
            else:
                session.open_fresh()
        except Exception as exc:
            # Journal/spool disagree (operator deleted the spool?): the
            # stream cannot be trusted — settle it, ask for no more.
            code, detail = classify_ingest_error(exc)
            session.quarantine(code, f"resume failed: {detail}")
            self.stats.note_quarantine(code)
            self.sessions[stream_id] = session
            await self._send(
                writer, FrameKind.ERR, {"code": code, "detail": detail}
            )
            return
        self.sessions[stream_id] = session
        holder[0] = session
        self.stats.streams_accepted += 1
        self.stats.streams_active += 1
        self.stats.events_fed += session.events_fed  # re-fed on resume
        try:
            await self._send(
                writer,
                FrameKind.ACK,
                {
                    "resume_offset": resume_offset,
                    "credit": cfg.window,
                    "v": PROTOCOL_VERSION,
                    "worker": cfg.worker_index,
                },
            )
        except (ConnectionError, RuntimeError):
            session.park()
            self.stats.streams_active -= 1
            self.stats.streams_parked += 1
            return
        await self._ingest_loop(session, reader, writer, cfg.window)

    async def _ingest_loop(
        self,
        session: StreamSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        credit: int,
    ) -> None:
        """DATA/FIN loop for one attached producer."""

        async def settle(code: str, detail: str) -> None:
            session.quarantine(code, detail)
            self.stats.note_quarantine(code)
            self.stats.streams_active -= 1
            if code == IDLE_TIMEOUT:
                self.stats.evictions += 1
            self._owed.pop(session.stream_id, None)
            try:
                await self._send(
                    writer, FrameKind.ERR, {"code": code, "detail": detail}
                )
            except (ConnectionError, RuntimeError):
                pass
            await self._flush_owed()

        def park() -> None:
            session.park()
            self.stats.streams_active -= 1
            self.stats.streams_parked += 1
            self._owed.pop(session.stream_id, None)

        while True:
            try:
                frame = await self._read(reader)
            except asyncio.TimeoutError:
                await settle(
                    IDLE_TIMEOUT,
                    f"no frame within {self.config.idle_timeout}s",
                )
                return
            except TornFrame:
                # Producer died mid-frame: resumable, not condemned.
                park()
                await self._flush_owed()
                return
            except (ProtocolError, ConnectionError) as exc:
                await settle(FLOW_VIOLATION, f"protocol violation: {exc}")
                return
            if frame is None:  # clean EOF before FIN: park for resume
                park()
                await self._flush_owed()
                return
            if frame.kind is FrameKind.DATA:
                credit -= len(frame.payload)
                if credit < 0:
                    await settle(
                        FLOW_VIOLATION,
                        f"credit overdraft ({-credit} bytes beyond window)",
                    )
                    return
                journaled_before = session.journaled_bytes
                try:
                    fed = session.ingest(frame.payload)
                except Exception as exc:  # hostile bytes: classify + settle
                    code, detail = classify_ingest_error(exc)
                    await settle(code, detail)
                    return
                self.stats.events_fed += fed
                self.stats.bytes_ingested += len(frame.payload)
                if session.journaled_bytes > journaled_before:
                    self.stats.journal_chunks += 1
                try:
                    credit += await self._grant_credit(
                        session, writer, len(frame.payload)
                    )
                except (ConnectionError, RuntimeError):
                    # Producer vanished between its last DATA frame and
                    # our CREDIT: a disconnect, so resumable.
                    park()
                    await self._flush_owed()
                    return
            elif frame.kind is FrameKind.FIN:
                if not session.decoder.complete:
                    await settle(
                        "torn",
                        "FIN before END chunk (stream incomplete or trailing "
                        "partial chunk)",
                    )
                    return
                row = await self._finalize(session)
                self.stats.streams_active -= 1
                try:
                    await self._send(
                        writer,
                        FrameKind.FIN_ACK,
                        {
                            "status": "analyzed",
                            "report": row["report"],
                            "defect_keys": row["defect_keys"],
                            "events": row["events"],
                        },
                    )
                except (ConnectionError, RuntimeError):
                    pass  # stream is sealed either way
                await self._flush_owed()
                return
            else:
                await settle(
                    FLOW_VIOLATION,
                    f"unexpected {frame.kind.name} frame mid-stream",
                )
                return

    async def _finalize(self, session: StreamSession) -> dict:
        """Seal one healthy stream: report file + journal row."""
        doc = session.finalize(shard_engine=self._ensure_shard_engine())
        name = os.path.join("reports", f"{session.stream_id}.json")
        path = os.path.join(self.config.out_dir, name)
        payload = render_report(doc)
        with open(path, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        row = session.seal_complete(name, sha256_file(path), doc)
        self.stats.analyzed += 1
        return row

    def _ensure_shard_engine(self):
        if self.config.shard_workers <= 1:
            return None
        if self._shard_engine is None:
            from repro.core.parallel import ProcessEngine

            self._shard_engine = ProcessEngine(self.config.shard_workers)
        return self._shard_engine

    # -- control channel -----------------------------------------------------

    async def _serve_control(
        self, frame: Frame, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.control_queries += 1
        try:
            query = frame.json().get("query", "stats")
        except ProtocolError:
            query = "stats"
        if query == "healthz":
            doc = self.stats.healthz(accepting=self.accepting, backend=self.backend)
        else:
            from repro.core.nativekernel import kernel_version

            detectors = {
                sid: s.detector.stats()
                for sid, s in self.sessions.items()
                if s.state is SessionState.ACTIVE
            }
            self._buffered_total()
            doc = self.stats.stats(
                accepting=self.accepting,
                detectors=detectors,
                backend=self.backend,
                kernel=kernel_version() if self.backend == "native" else None,
            )
        await self._send(writer, FrameKind.STATS, doc)


# ---------------------------------------------------------------------------
# introspection client
# ---------------------------------------------------------------------------


def query_server(
    socket_path: Optional[str] = None,
    tcp: Optional[Tuple[str, int]] = None,
    *,
    query: str = "stats",
    timeout: float = 10.0,
) -> dict:
    """Synchronous one-shot CONTROL query (``wolf serve --status``)."""
    import socket as socketlib

    if socket_path is not None:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(socket_path)
    elif tcp is not None:
        sock = socketlib.create_connection(tcp, timeout=timeout)
    else:
        raise ValueError("query_server needs a unix socket path or TCP address")
    try:
        sock.sendall(encode_json_frame(FrameKind.CONTROL, {"query": query}))
        frame = recv_frame_sync(sock)
        if frame is None or frame.kind is not FrameKind.STATS:
            raise ProtocolError("no STATS response from daemon")
        return frame.json()
    finally:
        sock.close()
