"""Canonical per-stream defect reports.

One function produces the report document and one function renders it to
bytes, and *both* the ingestion daemon and ``wolf analyze-trace --json``
go through them — which is what makes the acceptance property checkable
at the byte level: a healthy stream ingested over a socket yields a
report file byte-identical to the batch CLI run on the same ``.wtrc``.

The document is deliberately timestamp- and hostname-free: a defect
report is a pure function of the trace bytes and the detector knobs, so
identical inputs must produce identical bytes on any machine at any time.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.core.detector import DetectionResult
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.parallel import predict_decisions
from repro.core.prediction import ClosureIndex
from repro.core.pruner import Pruner
from repro.corpus.manifest import DETECTOR_PARAMS, canonical_keys
from repro.runtime.tracefile import TraceFileReader

REPORT_SCHEMA = "wolf-defect-report/2"


def defect_report_doc(
    detection: DetectionResult,
    *,
    program: str,
    seed: int,
    events: int,
    max_length: int = DETECTOR_PARAMS["max_length"],
    max_cycles: int = DETECTOR_PARAMS["max_cycles"],
    trace_path: Optional[str] = None,
) -> dict:
    """Build the canonical report document from a finished detection.

    Runs the trace-side pipeline tail (Pruner → Generator → prediction)
    exactly as ``wolf analyze-trace`` does.  Replay needs the live
    producer and stays out of scope for the ingestion tier; the
    sync-preserving prediction pass is what decides feasibility here —
    it certifies or refutes replay candidates from the trace alone, so
    fleet streams whose producers cannot be re-run still get verdicts.
    ``trace_path`` supplies the event stream for the closure index when
    the detection never materialized one (the streaming engine).
    """
    prune = Pruner(detection.vclocks).prune(detection.cycles)
    gen = Generator(detection.relation).run(prune.survivors)
    if len(detection.trace.events) > 0:
        index = ClosureIndex.from_events(detection.trace)
    elif trace_path is not None:
        with TraceFileReader(trace_path, mmap=True) as reader:
            index = ClosureIndex.from_events(reader)
    else:
        index = ClosureIndex()
    predictions = predict_decisions(index, gen.decisions)
    decisions = []
    counts = {"certified": 0, "refuted": 0, "undecided": 0}
    for dec, pred in zip(gen.decisions, predictions):
        if dec.verdict is GeneratorVerdict.FALSE:
            verdict = "false"
        else:
            verdict = "replayable"
        row = {
            "sites": sorted(dec.cycle.sites),
            "threads": len(dec.cycle.entries),
            "verdict": verdict,
        }
        if pred is not None:
            row["prediction"] = pred.verdict.value
            counts[pred.verdict.value] += 1
        decisions.append(row)
    examined = sum(counts.values())
    decided = counts["certified"] + counts["refuted"]
    return {
        "schema": REPORT_SCHEMA,
        "program": program,
        "seed": seed,
        "events": events,
        "engine": "streaming",
        "detector": {"max_length": max_length, "max_cycles": max_cycles},
        "cycles": len(detection.cycles),
        "truncated": detection.truncated,
        "defect_keys": [list(k) for k in canonical_keys(detection.defect_keys())],
        "pruned_false": len(prune.false_positives),
        "generator_false": len(gen.false_positives),
        "replay_candidates": len(gen.survivors),
        "prediction": {
            "certified": counts["certified"],
            "refuted": counts["refuted"],
            "undecided": counts["undecided"],
            "decided_ratio": (decided / examined) if examined else None,
        },
        "decisions": decisions,
    }


def report_doc_for_file(
    path: str,
    *,
    max_length: int = DETECTOR_PARAMS["max_length"],
    max_cycles: int = DETECTOR_PARAMS["max_cycles"],
    backend: str = "auto",
) -> dict:
    """The batch path: stream a ``.wtrc`` file through a fresh detector.

    This is the reference the daemon's incremental path must match
    byte-for-byte — same detector construction, same finish, same
    document builder.  ``backend`` only changes *how fast* the document
    is produced, never its bytes (the report deliberately carries no
    backend attribution — it stays a pure function of the trace bytes
    and detector knobs; attribution lives in the run manifest and the
    daemon's status documents).
    """
    from repro.core.nativekernel import analyze_trace_file

    analysis = analyze_trace_file(
        path, max_length=max_length, max_cycles=max_cycles, backend=backend
    )
    return defect_report_doc(
        analysis.detection,
        program=analysis.program,
        seed=analysis.seed,
        events=analysis.events,
        max_length=max_length,
        max_cycles=max_cycles,
        trace_path=path,
    )


def render_report(doc: dict) -> bytes:
    """Canonical byte rendering: sorted keys, two-space indent, ``\\n``."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")


def summarize_keys(doc: dict) -> Sequence[str]:
    """Flat ``site|site`` strings for manifest rows and logs."""
    return ["|".join(k) for k in doc.get("defect_keys", [])]


def events_of(doc: Optional[dict]) -> int:
    return 0 if doc is None else int(doc.get("events", 0))
