"""Canonical per-stream defect reports.

One function produces the report document and one function renders it to
bytes, and *both* the ingestion daemon and ``wolf analyze-trace --json``
go through them — which is what makes the acceptance property checkable
at the byte level: a healthy stream ingested over a socket yields a
report file byte-identical to the batch CLI run on the same ``.wtrc``.

The document is deliberately timestamp- and hostname-free: a defect
report is a pure function of the trace bytes and the detector knobs, so
identical inputs must produce identical bytes on any machine at any time.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.core.detector import DetectionResult
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.pruner import Pruner
from repro.core.streaming import StreamingDetector
from repro.corpus.manifest import DETECTOR_PARAMS, canonical_keys
from repro.runtime.tracefile import TraceFileReader

REPORT_SCHEMA = "wolf-defect-report/1"


def defect_report_doc(
    detection: DetectionResult,
    *,
    program: str,
    seed: int,
    events: int,
    max_length: int = DETECTOR_PARAMS["max_length"],
    max_cycles: int = DETECTOR_PARAMS["max_cycles"],
) -> dict:
    """Build the canonical report document from a finished detection.

    Runs the trace-side pipeline tail (Pruner → Generator) exactly as
    ``wolf analyze-trace`` does; replay needs the live producer and is
    deliberately out of scope for the ingestion tier (the sound-prediction
    ROADMAP item picks it up from here).
    """
    prune = Pruner(detection.vclocks).prune(detection.cycles)
    gen = Generator(detection.relation).run(prune.survivors)
    decisions = [
        {
            "sites": sorted(dec.cycle.sites),
            "threads": len(dec.cycle.entries),
            "verdict": (
                "false" if dec.verdict is GeneratorVerdict.FALSE else "replayable"
            ),
        }
        for dec in gen.decisions
    ]
    return {
        "schema": REPORT_SCHEMA,
        "program": program,
        "seed": seed,
        "events": events,
        "engine": "streaming",
        "detector": {"max_length": max_length, "max_cycles": max_cycles},
        "cycles": len(detection.cycles),
        "truncated": detection.truncated,
        "defect_keys": [list(k) for k in canonical_keys(detection.defect_keys())],
        "pruned_false": len(prune.false_positives),
        "generator_false": len(gen.false_positives),
        "replay_candidates": len(gen.survivors),
        "decisions": decisions,
    }


def report_doc_for_file(
    path: str,
    *,
    max_length: int = DETECTOR_PARAMS["max_length"],
    max_cycles: int = DETECTOR_PARAMS["max_cycles"],
) -> dict:
    """The batch path: stream a ``.wtrc`` file through a fresh detector.

    This is the reference the daemon's incremental path must match
    byte-for-byte — same detector construction, same finish, same
    document builder.
    """
    det = StreamingDetector(max_length=max_length, max_cycles=max_cycles)
    with TraceFileReader(path) as reader:
        det.feed_many(reader)
        program, seed = reader.program, reader.seed
    detection = det.finish()
    return defect_report_doc(
        detection,
        program=program,
        seed=seed,
        events=det.events_seen,
        max_length=max_length,
        max_cycles=max_cycles,
    )


def render_report(doc: dict) -> bytes:
    """Canonical byte rendering: sorted keys, two-space indent, ``\\n``."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")


def summarize_keys(doc: dict) -> Sequence[str]:
    """Flat ``site|site`` strings for manifest rows and logs."""
    return ["|".join(k) for k in doc.get("defect_keys", [])]


def events_of(doc: Optional[dict]) -> int:
    return 0 if doc is None else int(doc.get("events", 0))
