"""``/healthz`` and ``/stats`` documents for the ingestion daemon.

Counters are plain ints mutated from the (single-threaded) event loop, so
no locking; snapshots are cheap dicts the CONTROL channel serializes on
demand.  ``healthz`` is the liveness probe (is the daemon accepting?);
``stats`` is the observability document: stream counts, buffered bytes,
credit withholding, evictions, quarantines by taxonomy code, and
aggregate detector progress (events fed vs bytes buffered = detector
lag at chunk granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServeStats:
    """Mutable counters for one daemon incarnation."""

    connections: int = 0
    streams_accepted: int = 0
    streams_resumed: int = 0
    streams_active: int = 0
    streams_parked: int = 0
    analyzed: int = 0
    rejected: int = 0
    evictions: int = 0
    quarantined: Dict[str, int] = field(default_factory=dict)
    events_fed: int = 0
    bytes_ingested: int = 0
    buffered_bytes: int = 0
    credits_withheld: int = 0
    journal_chunks: int = 0
    control_queries: int = 0
    #: HELLOs for streams another fleet worker owns, answered with a
    #: ``wrong-worker`` redirect (always 0 in single-worker mode).
    redirects: int = 0
    #: Handler bugs swallowed by the zero-unhandled-exceptions backstop.
    internal_errors: int = 0
    draining: bool = False
    #: This daemon's shard identity in a fleet (0/1 when standalone).
    worker_index: int = 0
    num_workers: int = 1

    def note_quarantine(self, code: str) -> None:
        self.quarantined[code] = self.quarantined.get(code, 0) + 1

    def healthz(self, *, accepting: bool, backend: str = "python") -> dict:
        status = "draining" if self.draining else ("ok" if accepting else "down")
        return {
            "status": status,
            "accepting": accepting,
            "streams_active": self.streams_active,
            "backend": backend,
            "worker": self.worker_index,
            "workers": self.num_workers,
        }

    def stats(
        self,
        *,
        accepting: bool,
        detectors: Dict[str, dict],
        backend: str = "python",
        kernel: "str | None" = None,
    ) -> dict:
        """Full observability snapshot.

        ``detectors`` maps active stream ids to their
        :meth:`~repro.core.streaming.StreamingDetector.stats` snapshots;
        totals are aggregated here so the document stays useful when
        hundreds of streams are active.
        """
        detector_events = sum(d.get("events_seen", 0) for d in detectors.values())
        return {
            "accepting": accepting,
            "draining": self.draining,
            "backend": backend,
            "kernel": kernel,
            "worker": self.worker_index,
            "workers": self.num_workers,
            "connections": self.connections,
            "redirects": self.redirects,
            "streams": {
                "accepted": self.streams_accepted,
                "resumed": self.streams_resumed,
                "active": self.streams_active,
                "parked": self.streams_parked,
                "analyzed": self.analyzed,
                "quarantined": sum(self.quarantined.values()),
                "rejected": self.rejected,
            },
            "quarantine_reasons": dict(sorted(self.quarantined.items())),
            "evictions": self.evictions,
            "buffered_bytes": self.buffered_bytes,
            "bytes_ingested": self.bytes_ingested,
            "credits_withheld": self.credits_withheld,
            "journal_chunks": self.journal_chunks,
            "control_queries": self.control_queries,
            "internal_errors": self.internal_errors,
            "detector": {
                "events_fed": self.events_fed,
                "active_events_seen": detector_events,
                "lag_bytes": self.buffered_bytes,
                "per_stream": dict(sorted(detectors.items())),
            },
        }
