"""The ingestion wire protocol: length-prefixed frames + credit flow.

A producer connection is a strict little state machine::

    client                                server
    ------                                ------
    HELLO {stream_id, program}    ->
                                  <-      ACK {resume_offset, credit}
    DATA <raw .wtrc bytes>        ->          (repeated; bounded by credit)
                                  <-      CREDIT {credit}   (replenishment)
    FIN {}                        ->
                                  <-      FIN_ACK {status, ...}

or, for introspection, a single ``CONTROL {query}`` answered by one
``STATS {…}`` frame.  Any server-side rejection is an ``ERR {code,
detail}`` frame followed by connection close.

**Framing.**  ``kind:u8 + length:u32be + payload``.  Frames are capped at
:data:`MAX_FRAME`; JSON payloads are UTF-8.  The cap is enforced *from
the header* — a frame declaring more is a protocol error before any
payload is read, the same allocate-nothing posture the chunk decoder
takes (:class:`repro.runtime.tracefile.OversizedChunkError`).

**Backpressure.**  The server grants an initial byte ``credit`` in ACK
and replenishes with CREDIT frames only as it *finishes processing*
ingested bytes (decode + detect + spool + journal).  A well-behaved
producer never has more unacknowledged DATA bytes in flight than its
granted credit; the server tolerates zero overdraft — exceeding credit
is a deterministic ``flow-violation`` quarantine, and a producer that
simply stops consuming CREDIT stalls itself without occupying more than
its window of daemon memory.
"""

from __future__ import annotations

import enum
import hashlib
import json
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

#: Protocol version, exchanged in HELLO and checked by the server.
PROTOCOL_VERSION = 1

#: ERR code a worker answers HELLO with when the stream id hashes to a
#: different worker's shard; the doc carries the owner's identity and
#: direct addresses so the producer can reconnect there (the client shim
#: follows it transparently).
WRONG_WORKER = "wrong-worker"

#: Hard per-frame payload cap (1 MiB): DATA slices are far smaller (the
#: client shim defaults to 64 KiB), so anything near the cap is hostile.
MAX_FRAME = 1 << 20

#: Default per-stream credit window (256 KiB).
DEFAULT_WINDOW = 256 * 1024

_HEADER = struct.Struct("!BI")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (bad kind, oversized, torn)."""


class TornFrame(ProtocolError):
    """The connection dropped mid-frame (producer killed between header
    and payload).  Distinguished from other protocol errors because a
    torn producer is *resumable* — the server parks the stream — while a
    malformed frame is a flow violation."""


class FrameKind(enum.IntEnum):
    # client -> server
    HELLO = 1
    DATA = 2
    FIN = 3
    CONTROL = 4
    # server -> client
    ACK = 5
    CREDIT = 6
    ERR = 7
    FIN_ACK = 8
    STATS = 9


@dataclass(frozen=True)
class Frame:
    kind: FrameKind
    payload: bytes

    def json(self) -> dict:
        try:
            doc = json.loads(self.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed {self.kind.name} payload: {exc}")
        if not isinstance(doc, dict):
            raise ProtocolError(f"{self.kind.name} payload must be a JSON object")
        return doc


def encode_frame(kind: FrameKind, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload {len(payload)} exceeds MAX_FRAME {MAX_FRAME}"
        )
    return _HEADER.pack(int(kind), len(payload)) + payload


def encode_json_frame(kind: FrameKind, doc: dict) -> bytes:
    return encode_frame(kind, json.dumps(doc, sort_keys=True).encode("utf-8"))


def parse_header(header: bytes) -> Tuple[FrameKind, int]:
    """Decode one frame header; raises :class:`ProtocolError` on garbage."""
    if len(header) != _HEADER.size:
        raise ProtocolError("torn frame header")
    kind_raw, length = _HEADER.unpack(header)
    try:
        kind = FrameKind(kind_raw)
    except ValueError:
        raise ProtocolError(f"unknown frame kind {kind_raw}")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame declares {length} payload bytes (cap {MAX_FRAME})"
        )
    return kind, length


HEADER_SIZE = _HEADER.size


async def read_frame(reader) -> Optional[Frame]:
    """Read one frame off an asyncio stream; ``None`` at clean EOF.

    EOF mid-frame (a producer killed between header and payload) raises
    :class:`ProtocolError` — the caller distinguishes a clean goodbye
    from a torn one.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TornFrame("connection dropped mid-frame (torn header)")
    kind, length = parse_header(header)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise TornFrame("connection dropped mid-frame (torn payload)")
    return Frame(kind, payload)


def recv_frame_sync(sock) -> Optional[Frame]:
    """Blocking-socket twin of :func:`read_frame` (the client shim's side)."""
    header = _recv_exactly(sock, HEADER_SIZE)
    if header is None:
        return None
    if len(header) < HEADER_SIZE:
        raise TornFrame("connection dropped mid-frame (torn header)")
    kind, length = parse_header(header)
    payload = b""
    if length:
        payload = _recv_exactly(sock, length)
        if payload is None or len(payload) < length:
            raise TornFrame("connection dropped mid-frame (torn payload)")
    return Frame(kind, payload)


def shard_of(stream_id: str, num_workers: int) -> int:
    """The worker index that owns ``stream_id`` in an ``num_workers`` fleet.

    The routing contract every component shares — workers (ownership
    check + redirect), the supervisor's hash router, and reconnecting
    producers all compute the same owner, which is what makes per-worker
    journal segments safe: a stream's durable state only ever lives in
    one worker's run directory, across restarts and reconnects.  sha256
    rather than ``hash()``: stable across processes and Python runs
    (PYTHONHASHSEED never enters the picture).
    """
    if num_workers <= 1:
        return 0
    digest = hashlib.sha256(stream_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_workers


def redirect_doc(
    owner: int,
    *,
    socket_path: Optional[str] = None,
    tcp: Optional[Tuple[str, int]] = None,
) -> dict:
    """The ``wrong-worker`` ERR payload: who owns the stream, and where."""
    return {
        "code": WRONG_WORKER,
        "detail": f"stream belongs to worker {owner}",
        "worker": owner,
        "socket": socket_path,
        "tcp": list(tcp) if tcp is not None else None,
    }


def _recv_exactly(sock, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` at immediate EOF, short at torn."""
    chunks = []
    got = 0
    while got < n:
        block = sock.recv(n - got)
        if not block:
            return None if got == 0 else b"".join(chunks)
        chunks.append(block)
        got += len(block)
    return b"".join(chunks)
