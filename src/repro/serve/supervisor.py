"""The fleet supervisor: N ingestion workers behind one front door.

``wolf serve --workers N`` runs this instead of a single daemon.  The
supervisor forks N worker *processes*, each an ordinary single-process
:class:`~repro.serve.server.WolfServer` with its own run directory::

    out/
      fleet.json                 fleet topology + live status (supervisor-owned)
      run_manifest.json          ONE merged manifest, sealed at drain
      workers/
        w0/ … wN-1/
          worker.sock            the worker's direct unix listener
          endpoint.json          its advertised addresses (rewritten on restart)
          journal.jsonl spool/ reports/ quarantine/ run_manifest.json

**Routing.**  Stream ownership is ``shard_of(stream_id, N)`` — the
sha256 contract every component shares.  Two front doors:

* ``reuseport`` — every worker binds the same public TCP port with
  SO_REUSEPORT; the kernel balances accepts, and a worker answered a
  HELLO for a stream it does not own replies ``wrong-worker`` with the
  owner's direct addresses (the client shim follows transparently).
* ``proxy`` — the portability / unix-socket fallback: the supervisor
  itself listens on the public endpoint, peeks exactly one frame to
  learn the stream id, and splices bytes to the owning worker's unix
  socket.  Connect retries cover a worker's restart window.

**Lifecycle.**  The supervisor health-probes its children, restarts any
that die (the PR 7 journal machinery makes the restart resume journaled
streams from the last chunk boundary), and on SIGTERM coordinates the
drain: workers seal their per-worker manifests, the supervisor merges
them into one ``run_manifest.json``.  Restart counts live in
``fleet.json``, *never* in the merged manifest — a run that survived a
worker crash must seal byte-identical output to one that did not.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.journal import JOURNAL_NAME, RunJournal
from repro.serve.protocol import (
    DEFAULT_WINDOW,
    HEADER_SIZE,
    FrameKind,
    ProtocolError,
    encode_json_frame,
    parse_header,
    shard_of,
)
from repro.serve.server import (
    ENDPOINT_NAME,
    RUN_MANIFEST_NAME,
    reuseport_available,
)

FLEET_SCHEMA = "wolf-serve-fleet/1"
FLEET_NAME = "fleet.json"
#: Merged-manifest schema: wolf-serve-run/1 plus a ``fleet`` section.
MERGED_RUN_SCHEMA = "wolf-serve-run/2"

#: Tests set this to force the proxy router even where SO_REUSEPORT
#: exists, exercising the portability fallback path.
NO_REUSEPORT_ENV = "WOLF_SERVE_NO_REUSEPORT"


def worker_dir(out_dir: str, index: int) -> str:
    return os.path.join(out_dir, "workers", f"w{index}")


def worker_socket_path(out_dir: str, index: int) -> str:
    return os.path.join(worker_dir(out_dir, index), "worker.sock")


@dataclass
class FleetConfig:
    """Supervisor knobs; per-worker knobs pass straight through."""

    out_dir: str
    workers: int = 2
    #: Public unix socket (always served: by the proxy router).
    socket_path: Optional[str] = None
    #: Public TCP endpoint (reuseport-shared or proxied).
    tcp: Optional[Tuple[str, int]] = None
    #: ``auto`` → reuseport when TCP + platform allow, else proxy.
    router: str = "auto"
    idle_timeout: float = 30.0
    window: int = DEFAULT_WINDOW
    max_total_buffer: int = 8 * 1024 * 1024
    max_stream_bytes: Optional[int] = 64 * 1024 * 1024
    shard_workers: int = 1
    journal_max_bytes: Optional[int] = 32 * 1024 * 1024
    journal_fsync: bool = True
    backend: str = "auto"
    #: Seconds between child liveness probes.
    health_interval: float = 0.25
    #: Seconds a draining worker gets before SIGKILL escalation.
    drain_timeout: float = 30.0
    #: Restarts allowed per worker before the supervisor gives up on it.
    max_restarts: int = 16

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.socket_path is None and self.tcp is None:
            raise ValueError("FleetConfig needs a public socket path or TCP address")
        if self.router not in ("auto", "reuseport", "proxy"):
            raise ValueError(
                f"router must be 'auto', 'reuseport' or 'proxy', got {self.router!r}"
            )


def resolve_router(cfg: FleetConfig) -> str:
    """Pick the front door: reuseport needs TCP *and* platform support."""
    can_reuseport = (
        cfg.tcp is not None
        and reuseport_available()
        and not os.environ.get(NO_REUSEPORT_ENV)
    )
    if cfg.router == "reuseport":
        if not can_reuseport:
            raise ValueError(
                "router='reuseport' needs a TCP endpoint and SO_REUSEPORT "
                f"support (set --tcp; unset {NO_REUSEPORT_ENV})"
            )
        return "reuseport"
    if cfg.router == "proxy":
        return "proxy"
    return "reuseport" if can_reuseport else "proxy"


def _pick_free_port(host: str) -> int:
    """A port the fleet's workers can all bind with SO_REUSEPORT."""
    import socket as socketlib

    sock = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM)
    try:
        sock.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEPORT, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]
    finally:
        sock.close()


class FleetSupervisor:
    """One fleet run: spawn, route, probe, restart, drain, merge."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.router = resolve_router(config)
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.restarts: List[int] = [0] * config.workers
        self._procs: List[Optional[subprocess.Popen]] = [None] * config.workers
        self._logs: List[Optional[object]] = [None] * config.workers
        self._servers: List[asyncio.AbstractServer] = []
        self._router_conns: set = set()
        self._health_task: Optional[asyncio.Task] = None
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._drain_done: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        self._drain_requested = asyncio.Event()
        self._drain_done = asyncio.Event()
        if cfg.tcp is not None:
            host, port = cfg.tcp
            if self.router == "reuseport" and port == 0:
                # Workers must all bind the *same* port, so an ephemeral
                # request is resolved up front.
                port = _pick_free_port(host)
            self.tcp_address = (host, port)
        for k in range(cfg.workers):
            os.makedirs(worker_dir(cfg.out_dir, k), exist_ok=True)
        self._write_fleet_doc()
        for k in range(cfg.workers):
            self._procs[k] = self._spawn(k)
        await self._wait_ready()
        if self.router == "proxy":
            await self._start_router()
        elif cfg.socket_path is not None:
            # Reuseport covers TCP only; the public unix socket is still
            # proxied so unix clients keep working.
            self._servers.append(
                await asyncio.start_unix_server(
                    self._route_connection, cfg.socket_path
                )
            )
        self._health_task = asyncio.ensure_future(self._health_loop())

    def request_drain(self) -> None:
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def run(self) -> None:
        await self.start()
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()

    async def drain(self) -> None:
        """SIGTERM every worker, wait them out, merge ONE manifest."""
        if self._draining:
            assert self._drain_done is not None
            await self._drain_done.wait()
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        self._servers = []
        for proc in self._procs:
            if proc is not None and proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline:
            if all(p is None or p.poll() is not None for p in self._procs):
                break
            await asyncio.sleep(0.05)
        for proc in self._procs:  # stragglers past the deadline
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        for fh in self._logs:
            if fh is not None:
                fh.close()
        self._logs = [None] * self.config.workers
        self._write_merged_manifest()
        self._write_fleet_doc(drained=True)
        if self.config.socket_path is not None and os.path.exists(
            self.config.socket_path
        ):
            os.unlink(self.config.socket_path)
        assert self._drain_done is not None
        self._drain_done.set()

    # -- children ------------------------------------------------------------

    def _spawn(self, index: int) -> subprocess.Popen:
        cfg = self.config
        wdir = worker_dir(cfg.out_dir, index)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--out",
            wdir,
            "--socket",
            worker_socket_path(cfg.out_dir, index),
            "--idle-timeout",
            str(cfg.idle_timeout),
            "--window",
            str(cfg.window),
            "--max-total-buffer",
            str(cfg.max_total_buffer),
            "--max-stream-bytes",
            str(cfg.max_stream_bytes),
            "--backend",
            cfg.backend,
            "--shard-workers",
            str(cfg.shard_workers),
            "--journal-max-bytes",
            str(cfg.journal_max_bytes or 0),
            "--fleet-dir",
            cfg.out_dir,
            "--fleet-index",
            str(index),
            "--fleet-size",
            str(cfg.workers),
        ]
        if not cfg.journal_fsync:
            argv.append("--no-journal-fsync")
        if self.router == "reuseport" and self.tcp_address is not None:
            host, port = self.tcp_address
            argv += ["--tcp", f"{host}:{port}", "--tcp-reuseport"]
        if self._logs[index] is None:
            self._logs[index] = open(
                os.path.join(wdir, "worker.log"), "ab", buffering=0
            )
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            argv, stdout=self._logs[index], stderr=self._logs[index], env=env
        )

    async def _wait_ready(self, timeout: float = 20.0) -> None:
        """Block until every worker has advertised live endpoints."""
        deadline = time.monotonic() + timeout
        for k in range(self.config.workers):
            path = os.path.join(worker_dir(self.config.out_dir, k), ENDPOINT_NAME)
            while True:
                proc = self._procs[k]
                assert proc is not None
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"fleet worker {k} exited during startup "
                        f"(rc={proc.returncode}); see its worker.log"
                    )
                if self._endpoint_pid(path) == proc.pid:
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError(f"fleet worker {k} never became ready")
                await asyncio.sleep(0.02)

    @staticmethod
    def _endpoint_pid(path: str) -> Optional[int]:
        try:
            with open(path) as fh:
                return int(json.load(fh).get("pid", -1))
        except (OSError, ValueError):
            return None

    async def _health_loop(self) -> None:
        """Restart dead workers; journaled streams resume on reconnect."""
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.health_interval)
            for k, proc in enumerate(self._procs):
                if proc is None or proc.poll() is None:
                    continue
                if self.restarts[k] >= cfg.max_restarts:
                    self._procs[k] = None
                    continue
                self.restarts[k] += 1
                self._procs[k] = self._spawn(k)
                self._write_fleet_doc()

    # -- proxy router --------------------------------------------------------

    async def _start_router(self) -> None:
        cfg = self.config
        if cfg.socket_path is not None:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._route_connection, cfg.socket_path
                )
            )
        if self.tcp_address is not None:
            host, port = self.tcp_address
            srv = await asyncio.start_server(self._route_connection, host, port)
            self._servers.append(srv)
            if srv.sockets:
                addr = srv.sockets[0].getsockname()
                self.tcp_address = (addr[0], addr[1])
                self._write_fleet_doc()

    async def _route_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Peek one frame, pick the shard, splice bytes both ways."""
        try:
            try:
                raw, kind, doc = await asyncio.wait_for(
                    _read_raw_frame(reader), timeout=self.config.idle_timeout
                )
            except (
                asyncio.TimeoutError,
                ProtocolError,
                ConnectionError,
                asyncio.IncompleteReadError,
            ):
                return
            if kind is FrameKind.HELLO:
                owner = shard_of(str(doc.get("stream", "")), self.config.workers)
            elif kind is FrameKind.CONTROL:
                owner = 0  # any worker can answer; w0 by convention
            else:
                writer.write(
                    encode_json_frame(
                        FrameKind.ERR,
                        {"code": "flow-violation", "detail": "expected HELLO"},
                    )
                )
                await writer.drain()
                return
            upstream = await self._connect_worker(owner)
            if upstream is None:
                writer.write(
                    encode_json_frame(
                        FrameKind.ERR,
                        {
                            "code": "unavailable",
                            "detail": f"worker {owner} is not answering",
                        },
                    )
                )
                await writer.drain()
                return
            wreader, wwriter = upstream
            try:
                wwriter.write(raw)
                await wwriter.drain()
                await asyncio.gather(
                    _pump(reader, wwriter), _pump(wreader, writer)
                )
            finally:
                wwriter.close()
                try:
                    await wwriter.wait_closed()
                except (ConnectionError, OSError):
                    pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _connect_worker(self, index: int):
        """Dial a worker's unix socket, retrying across a restart window."""
        path = worker_socket_path(self.config.out_dir, index)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                return await asyncio.open_unix_connection(path)
            except (ConnectionError, FileNotFoundError, OSError):
                if self._draining or time.monotonic() > deadline:
                    return None
                await asyncio.sleep(0.05)

    # -- documents -----------------------------------------------------------

    def _write_fleet_doc(self, *, drained: bool = False) -> None:
        cfg = self.config
        doc = {
            "schema": FLEET_SCHEMA,
            "workers": cfg.workers,
            "router": self.router,
            "socket": os.path.abspath(cfg.socket_path)
            if cfg.socket_path
            else None,
            "tcp": list(self.tcp_address) if self.tcp_address else None,
            "pid": os.getpid(),
            "restarts": list(self.restarts),
            "drained": drained,
        }
        path = os.path.join(cfg.out_dir, FLEET_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def _write_merged_manifest(self) -> None:
        doc = merge_manifests(
            self.config.out_dir, self.config.workers, router=self.router
        )
        path = os.path.join(self.config.out_dir, RUN_MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)


def merge_manifests(out_dir: str, workers: int, *, router: str) -> dict:
    """One fleet manifest from N per-worker manifests.

    A worker that never sealed (SIGKILLed straggler) contributes its
    journaled terminal rows instead — the journal is the durable truth
    the manifest is derived from.  Restart counts deliberately do not
    appear: a crash-surviving run must merge byte-identical to a clean
    one.
    """
    rows: Dict[str, dict] = {}
    rejected: List[dict] = []
    detector: Optional[dict] = None
    sealed = 0
    for k in range(workers):
        wdir = worker_dir(out_dir, k)
        mpath = os.path.join(wdir, RUN_MANIFEST_NAME)
        if os.path.exists(mpath):
            with open(mpath) as fh:
                wdoc = json.load(fh)
            sealed += 1
            if detector is None:
                detector = wdoc.get("detector")
            for row in wdoc.get("streams", []):
                rows[row["stream"]] = row
            rejected.extend(wdoc.get("rejected", []))
        else:
            state = RunJournal.load_state(os.path.join(wdir, JOURNAL_NAME))
            rows.update(state.completed)
            rows.update(state.quarantined)
            rejected.extend(state.rejected)
    stream_rows = [rows[sid] for sid in sorted(rows)]
    analyzed = [r for r in stream_rows if r.get("status") == "analyzed"]
    quarantined = [r for r in stream_rows if r.get("status") == "quarantined"]
    return {
        "schema": MERGED_RUN_SCHEMA,
        "drained": sealed == workers,
        "detector": detector,
        "fleet": {"workers": workers, "router": router},
        "streams": stream_rows,
        "rejected": sorted(rejected, key=lambda r: (r["stream"], r["code"])),
        "totals": {
            "streams": len(stream_rows),
            "analyzed": len(analyzed),
            "quarantined": len(quarantined),
            "rejected": len(rejected),
            "events": sum(r.get("events", 0) for r in analyzed),
            "defect_keys": sum(r.get("defect_keys", 0) for r in analyzed),
        },
    }


def fleet_status(out_dir: str, *, timeout: float = 5.0) -> dict:
    """Live fleet overview: fleet.json + a healthz probe per worker."""
    from repro.serve.server import query_server

    with open(os.path.join(out_dir, FLEET_NAME)) as fh:
        fleet = json.load(fh)
    probes = {}
    for k in range(int(fleet.get("workers", 0))):
        sock = worker_socket_path(out_dir, k)
        try:
            probes[f"w{k}"] = query_server(
                socket_path=sock, query="healthz", timeout=timeout
            )
        except Exception as exc:
            probes[f"w{k}"] = {"status": "unreachable", "error": str(exc)}
    fleet["probes"] = probes
    return fleet


async def _read_raw_frame(reader: asyncio.StreamReader):
    """One frame as raw bytes + parsed kind/doc (the router's peek)."""
    header = await reader.readexactly(HEADER_SIZE)
    kind, length = parse_header(header)
    payload = await reader.readexactly(length) if length else b""
    doc: dict = {}
    if kind in (FrameKind.HELLO, FrameKind.CONTROL):
        try:
            doc = json.loads(payload.decode("utf-8"))
            if not isinstance(doc, dict):
                doc = {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {}
    return header + payload, kind, doc


async def _pump(src: asyncio.StreamReader, dst: asyncio.StreamWriter) -> None:
    """Copy bytes until EOF, then half-close the destination."""
    try:
        while True:
            block = await src.read(64 * 1024)
            if not block:
                break
            dst.write(block)
            await dst.drain()
    except (ConnectionError, OSError, asyncio.CancelledError):
        pass
    finally:
        try:
            if dst.can_write_eof():
                dst.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass
