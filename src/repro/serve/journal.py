"""Chunk-granularity crash-recovery journal for one ingestion run.

The daemon's durability story: every state transition that must survive a
``kill -9`` is one fsynced JSONL line in ``journal.jsonl`` inside the run
directory.  Three facts are journaled:

* ``chunk`` — a stream's spool has been durably ingested up to byte
  ``bytes`` (always a ``.wtrc`` chunk boundary, so re-feeding the spool
  prefix reproduces the detector's state exactly);
* ``complete`` — a stream finished: its report row (events, defect keys,
  report filename, sha256) is recorded so a restarted daemon can rebuild
  the run manifest *without re-analyzing the trace*;
* ``quarantine`` / ``reject`` — a stream (or a connection attempt) was
  classified hostile, with its taxonomy code.

Recovery (:meth:`RunJournal.load_state`) replays the journal into a
:class:`JournalState`: completed and quarantined streams are terminal,
anything else with journaled bytes is resumable from that offset.  A torn
final line (the crash landed mid-write) is ignored — everything before it
was fsynced.

**Compaction.**  Chunk rows dominate the journal (one per durable chunk
boundary, hundreds per stream) but only the *last* one per stream
matters, and across daemon restarts the append-only file would grow
without bound.  With ``max_bytes`` set, the journal rotates whenever an
append pushes it past the limit: the writer's live :class:`JournalState`
mirror is serialized as a single ``snapshot`` row into a fresh file,
atomically swapped into place, and appending continues after it.  A
``snapshot`` row *replaces* all prior state during recovery, so a journal
is always equivalent to (snapshot ∘ suffix) — rotation is invisible to
crash recovery, which the rotation-boundary resume test proves.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

JOURNAL_NAME = "journal.jsonl"


@dataclass
class JournalState:
    """What a journal says survived the previous daemon incarnation."""

    #: stream id -> durably-ingested byte count (chunk boundary)
    bytes_ingested: Dict[str, int] = field(default_factory=dict)
    #: stream id -> sealed manifest row (status "analyzed")
    completed: Dict[str, dict] = field(default_factory=dict)
    #: stream id -> sealed manifest row (status "quarantined")
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: connection attempts rejected before a session existed
    rejected: List[dict] = field(default_factory=list)

    def terminal(self, stream_id: str) -> bool:
        return stream_id in self.completed or stream_id in self.quarantined

    def resumable(self) -> Dict[str, int]:
        """Streams with durable bytes but no terminal verdict."""
        return {
            s: n
            for s, n in self.bytes_ingested.items()
            if not self.terminal(s)
        }

    def to_doc(self) -> dict:
        """Wire form of a compaction snapshot.

        Terminal streams drop their ``bytes_ingested`` entries — only the
        terminal row matters for them, and shedding dead chunk offsets is
        half the point of compacting.
        """
        return {
            "bytes_ingested": {
                s: n for s, n in sorted(self.resumable().items())
            },
            "completed": {s: r for s, r in sorted(self.completed.items())},
            "quarantined": {s: r for s, r in sorted(self.quarantined.items())},
            "rejected": list(self.rejected),
        }

    @staticmethod
    def from_doc(doc: dict) -> "JournalState":
        return JournalState(
            bytes_ingested={
                str(s): int(n)
                for s, n in doc.get("bytes_ingested", {}).items()
            },
            completed=dict(doc.get("completed", {})),
            quarantined=dict(doc.get("quarantined", {})),
            rejected=list(doc.get("rejected", [])),
        )


class RunJournal:
    """Append-only fsynced JSONL journal (one per run directory).

    ``max_bytes`` enables size-triggered compaction (see module docs);
    ``None`` keeps the historical grow-forever behavior.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.path = path
        self._fsync = fsync
        self._max_bytes = max_bytes
        #: Rotations performed by this journal instance (observability).
        self.rotations = 0
        # The live mirror compaction snapshots; seeded from whatever the
        # file already holds so a post-restart rotation loses nothing.
        self._state = RunJournal.load_state(path)
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------------

    def _append(self, doc: dict) -> None:
        assert self._fh is not None, "journal is closed"
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        if self._max_bytes is not None and self._fh.tell() > self._max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Compact: snapshot the mirror into a fresh file, swap, continue.

        The snapshot is fully durable (fsynced, then atomically replaced,
        then the directory entry fsynced) *before* the old file goes
        away, so a crash at any instant leaves either the old journal or
        the complete snapshot — never neither.
        """
        assert self._fh is not None
        tmp = self.path + ".compact"
        with open(tmp, "w", encoding="utf-8") as out:
            out.write(
                json.dumps(
                    {"op": "snapshot", "state": self._state.to_doc()},
                    sort_keys=True,
                )
                + "\n"
            )
            out.flush()
            if self._fsync:
                os.fsync(out.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        if self._fsync:
            dir_fd = os.open(os.path.dirname(self.path) or ".", os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def chunk(self, stream_id: str, bytes_ingested: int) -> None:
        self._state.bytes_ingested[stream_id] = bytes_ingested
        self._append(
            {"op": "chunk", "stream": stream_id, "bytes": bytes_ingested}
        )

    def complete(self, stream_id: str, row: dict) -> None:
        self._state.completed[stream_id] = row
        self._append({"op": "complete", "stream": stream_id, "row": row})

    def quarantine(self, stream_id: str, row: dict) -> None:
        self._state.quarantined[stream_id] = row
        self._append({"op": "quarantine", "stream": stream_id, "row": row})

    def reject(self, stream_id: str, code: str, detail: str) -> None:
        self._state.rejected.append(
            {"stream": stream_id, "code": code, "detail": detail}
        )
        self._append(
            {"op": "reject", "stream": stream_id, "code": code, "detail": detail}
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery ------------------------------------------------------------

    @staticmethod
    def load_state(path: str) -> JournalState:
        """Replay a journal file (missing file = empty state)."""
        state = JournalState()
        if not os.path.exists(path):
            return state
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    # Torn final line from a crash mid-write: everything
                    # before it was fsynced, so stop here.
                    break
                op = doc.get("op")
                stream = doc.get("stream", "")
                if op == "snapshot":
                    # A compaction point: the snapshot *is* the state at
                    # that instant; later lines replay on top of it.
                    state = JournalState.from_doc(doc.get("state", {}))
                elif op == "chunk":
                    state.bytes_ingested[stream] = int(doc["bytes"])
                elif op == "complete":
                    state.completed[stream] = doc["row"]
                elif op == "quarantine":
                    state.quarantined[stream] = doc["row"]
                elif op == "reject":
                    state.rejected.append(
                        {
                            "stream": stream,
                            "code": doc.get("code", ""),
                            "detail": doc.get("detail", ""),
                        }
                    )
        return state
