"""Chunk-granularity crash-recovery journal for one ingestion run.

The daemon's durability story: every state transition that must survive a
``kill -9`` is one fsynced JSONL line in ``journal.jsonl`` inside the run
directory.  Three facts are journaled:

* ``chunk`` — a stream's spool has been durably ingested up to byte
  ``bytes`` (always a ``.wtrc`` chunk boundary, so re-feeding the spool
  prefix reproduces the detector's state exactly);
* ``complete`` — a stream finished: its report row (events, defect keys,
  report filename, sha256) is recorded so a restarted daemon can rebuild
  the run manifest *without re-analyzing the trace*;
* ``quarantine`` / ``reject`` — a stream (or a connection attempt) was
  classified hostile, with its taxonomy code.

Recovery (:meth:`RunJournal.load_state`) replays the journal into a
:class:`JournalState`: completed and quarantined streams are terminal,
anything else with journaled bytes is resumable from that offset.  A torn
final line (the crash landed mid-write) is ignored — everything before it
was fsynced.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

JOURNAL_NAME = "journal.jsonl"


@dataclass
class JournalState:
    """What a journal says survived the previous daemon incarnation."""

    #: stream id -> durably-ingested byte count (chunk boundary)
    bytes_ingested: Dict[str, int] = field(default_factory=dict)
    #: stream id -> sealed manifest row (status "analyzed")
    completed: Dict[str, dict] = field(default_factory=dict)
    #: stream id -> sealed manifest row (status "quarantined")
    quarantined: Dict[str, dict] = field(default_factory=dict)
    #: connection attempts rejected before a session existed
    rejected: List[dict] = field(default_factory=list)

    def terminal(self, stream_id: str) -> bool:
        return stream_id in self.completed or stream_id in self.quarantined

    def resumable(self) -> Dict[str, int]:
        """Streams with durable bytes but no terminal verdict."""
        return {
            s: n
            for s, n in self.bytes_ingested.items()
            if not self.terminal(s)
        }


class RunJournal:
    """Append-only fsynced JSONL journal (one per run directory)."""

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync
        self._fh: Optional[TextIO] = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------------

    def _append(self, doc: dict) -> None:
        assert self._fh is not None, "journal is closed"
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def chunk(self, stream_id: str, bytes_ingested: int) -> None:
        self._append(
            {"op": "chunk", "stream": stream_id, "bytes": bytes_ingested}
        )

    def complete(self, stream_id: str, row: dict) -> None:
        self._append({"op": "complete", "stream": stream_id, "row": row})

    def quarantine(self, stream_id: str, row: dict) -> None:
        self._append({"op": "quarantine", "stream": stream_id, "row": row})

    def reject(self, stream_id: str, code: str, detail: str) -> None:
        self._append(
            {"op": "reject", "stream": stream_id, "code": code, "detail": detail}
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery ------------------------------------------------------------

    @staticmethod
    def load_state(path: str) -> JournalState:
        """Replay a journal file (missing file = empty state)."""
        state = JournalState()
        if not os.path.exists(path):
            return state
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    # Torn final line from a crash mid-write: everything
                    # before it was fsynced, so stop here.
                    break
                op = doc.get("op")
                stream = doc.get("stream", "")
                if op == "chunk":
                    state.bytes_ingested[stream] = int(doc["bytes"])
                elif op == "complete":
                    state.completed[stream] = doc["row"]
                elif op == "quarantine":
                    state.quarantined[stream] = doc["row"]
                elif op == "reject":
                    state.rejected.append(
                        {
                            "stream": stream,
                            "code": doc.get("code", ""),
                            "detail": doc.get("detail", ""),
                        }
                    )
        return state
