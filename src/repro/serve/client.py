"""Producer shims: the well-behaved client and its chaos twins.

:func:`send_trace` is the reference producer — what a recorder host runs
to ship a finished (or in-progress) ``.wtrc`` to the ingestion daemon.
It speaks the credit protocol honestly: HELLO, seek to the server's
``resume_offset``, slice DATA frames never exceeding granted credit,
FIN, wait for FIN_ACK.

:func:`chaos_client` is the same shim bent into the failure shapes the
robustness suite injects:

``kill``        drop the connection mid-DATA-frame (torn frame);
``stall``       go silent mid-stream until the idle deadline evicts us;
``garbage``     ship bytes that are not a ``.wtrc`` stream at all;
``corrupt``     flip a byte inside a chunk payload;
``oversized``   declare a ``.wtrc`` chunk bigger than the daemon's cap;
``overdraft``   send more DATA than the granted credit window;
``dup``         HELLO under a stream id that is already active/settled;
``reconnect``   kill mid-stream, then reconnect and finish honestly
                (exercises park → resume_offset → FIN).

Every chaos mode reports what the *server* said happened
(:class:`ChaosOutcome`), so tests assert the daemon's classification, not
the client's intent.
"""

from __future__ import annotations

import os
import socket as socketlib
import struct
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.serve.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    WRONG_WORKER,
    Frame,
    FrameKind,
    ProtocolError,
    encode_frame,
    encode_json_frame,
    recv_frame_sync,
)

#: Default DATA slice (64 KiB): small enough that several slices fit in
#: one credit window, large enough to amortize syscalls.
DEFAULT_SLICE = 64 * 1024

#: ``wrong-worker`` redirects a single send will follow before giving up
#: (a sane fleet resolves in one hop; a loop means misconfiguration).
MAX_REDIRECTS = 4


@dataclass
class SendResult:
    """What one honest send accomplished."""

    stream_id: str
    ok: bool
    bytes_sent: int = 0
    resume_offset: int = 0
    credit_waits: int = 0
    #: ``wrong-worker`` redirects followed before landing on the owner.
    redirects: int = 0
    #: FIN_ACK payload when ``ok``; ERR payload otherwise.
    response: dict = field(default_factory=dict)
    error_code: Optional[str] = None


@dataclass
class ChaosOutcome:
    """What the server told a chaos client before/while it misbehaved."""

    mode: str
    stream_id: str
    #: ERR payload, if the server sent one before we vanished.
    err: Optional[dict] = None
    #: FIN_ACK payload for modes that eventually complete (reconnect).
    fin_ack: Optional[dict] = None
    bytes_sent: int = 0
    reconnected: bool = False


def _connect(
    socket_path: Optional[str],
    tcp: Optional[Tuple[str, int]],
    timeout: float,
) -> socketlib.socket:
    if socket_path is not None:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(socket_path)
        return sock
    if tcp is not None:
        return socketlib.create_connection(tcp, timeout=timeout)
    raise ValueError("need a unix socket path or a TCP address")


def _hello(
    sock: socketlib.socket, stream_id: str, program: str
) -> Tuple[Optional[Frame], dict]:
    """HELLO → first server frame; returns (frame, ack_doc_or_err_doc)."""
    sock.sendall(
        encode_json_frame(
            FrameKind.HELLO,
            {"v": PROTOCOL_VERSION, "stream": stream_id, "program": program},
        )
    )
    frame = recv_frame_sync(sock)
    if frame is None:
        return None, {}
    return frame, frame.json()


def send_trace(
    trace_path: str,
    stream_id: str,
    *,
    socket_path: Optional[str] = None,
    tcp: Optional[Tuple[str, int]] = None,
    program: str = "",
    slice_bytes: int = DEFAULT_SLICE,
    batch: bool = False,
    timeout: float = 30.0,
) -> SendResult:
    """Ship one ``.wtrc`` file to the daemon, honoring credit flow.

    ``batch=True`` coalesces DATA frames up to the granted credit window
    (capped by the protocol's frame limit) instead of fixed
    ``slice_bytes`` slices — fewer frames and syscalls per stream, which
    is what lets a bench producer saturate a multi-worker fleet.  Credit
    accounting is unchanged: a batched producer still never overdrafts.

    In a fleet, the daemon answering HELLO may not own the stream's
    shard; it replies ``wrong-worker`` with the owner's direct addresses
    and this shim follows the redirect transparently (bounded by
    :data:`MAX_REDIRECTS`).
    """
    result = SendResult(stream_id=stream_id, ok=False)
    sock = _connect(socket_path, tcp, timeout)
    try:
        frame, doc = _hello(sock, stream_id, program or os.path.basename(trace_path))
        while (
            frame is not None
            and frame.kind is FrameKind.ERR
            and doc.get("code") == WRONG_WORKER
            and (doc.get("socket") or doc.get("tcp"))
            and result.redirects < MAX_REDIRECTS
        ):
            result.redirects += 1
            sock.close()
            owner_tcp = tuple(doc["tcp"]) if doc.get("tcp") else None
            sock = _connect(doc.get("socket"), owner_tcp, timeout)
            frame, doc = _hello(
                sock, stream_id, program or os.path.basename(trace_path)
            )
        if frame is None or frame.kind is FrameKind.ERR:
            result.error_code = doc.get("code", "connection-closed")
            result.response = doc
            return result
        if frame.kind is not FrameKind.ACK:
            result.error_code = "protocol"
            return result
        credit = int(doc.get("credit", 0))
        offset = int(doc.get("resume_offset", 0))
        result.resume_offset = offset
        with open(trace_path, "rb") as fh:
            fh.seek(offset)
            while True:
                # Never exceed granted credit: block on CREDIT frames
                # when the window is exhausted (the backpressure path).
                while credit <= 0:
                    reply = recv_frame_sync(sock)
                    if reply is None:
                        result.error_code = "connection-closed"
                        return result
                    if reply.kind is FrameKind.ERR:
                        result.response = reply.json()
                        result.error_code = result.response.get("code")
                        return result
                    if reply.kind is FrameKind.CREDIT:
                        credit += int(reply.json().get("credit", 0))
                        result.credit_waits += 1
                want = min(credit, MAX_FRAME) if batch else min(slice_bytes, credit)
                block = fh.read(want)
                if not block:
                    break
                sock.sendall(encode_frame(FrameKind.DATA, block))
                credit -= len(block)
                result.bytes_sent += len(block)
        sock.sendall(encode_frame(FrameKind.FIN))
        # Drain CREDIT replenishments until the FIN verdict arrives.
        while True:
            reply = recv_frame_sync(sock)
            if reply is None:
                result.error_code = "connection-closed"
                return result
            if reply.kind is FrameKind.CREDIT:
                continue
            result.response = reply.json()
            if reply.kind is FrameKind.FIN_ACK:
                result.ok = True
            else:
                result.error_code = result.response.get("code", "protocol")
            return result
    except (ProtocolError, ConnectionError, socketlib.timeout) as exc:
        result.error_code = f"client-error: {exc}"
        return result
    finally:
        sock.close()


CHAOS_MODES = (
    "kill",
    "stall",
    "garbage",
    "corrupt",
    "oversized",
    "overdraft",
    "dup",
    "reconnect",
)


def chaos_client(
    mode: str,
    trace_path: str,
    stream_id: str,
    *,
    socket_path: Optional[str] = None,
    tcp: Optional[Tuple[str, int]] = None,
    timeout: float = 30.0,
    stall_seconds: Optional[float] = None,
) -> ChaosOutcome:
    """Misbehave in one deterministic way; report the server's verdict."""
    if mode not in CHAOS_MODES:
        raise ValueError(f"unknown chaos mode {mode!r} (want one of {CHAOS_MODES})")
    outcome = ChaosOutcome(mode=mode, stream_id=stream_id)
    data = b""
    if mode != "dup":
        with open(trace_path, "rb") as fh:
            data = fh.read()
    sock = _connect(socket_path, tcp, timeout)
    try:
        frame, doc = _hello(sock, stream_id, f"chaos-{mode}")
        if frame is None:
            return outcome
        if frame.kind is FrameKind.ERR:
            outcome.err = doc
            return outcome
        credit = int(doc.get("credit", 0))

        if mode == "dup":
            # The HELLO itself was the attack; an ACK here means the
            # duplicate was *not* caught (tests assert err instead).
            return outcome

        if mode == "kill" or mode == "reconnect":
            # Send one honest slice, then vanish mid-frame: a DATA header
            # declaring more payload than ever arrives.
            cut = min(len(data) // 2, max(credit - 1, 1))
            sock.sendall(encode_frame(FrameKind.DATA, data[:cut]))
            outcome.bytes_sent = cut
            header = struct.pack("!BI", int(FrameKind.DATA), 4096)
            sock.sendall(header + b"\x00" * 10)  # 10 of 4096 bytes, then gone
            sock.close()
            if mode == "kill":
                return outcome
            outcome.reconnected = True
            result = send_trace(
                trace_path,
                stream_id,
                socket_path=socket_path,
                tcp=tcp,
                timeout=timeout,
            )
            if result.ok:
                outcome.fin_ack = result.response
            else:
                outcome.err = result.response or {"code": result.error_code}
            outcome.bytes_sent += result.bytes_sent
            return outcome

        if mode == "stall":
            cut = min(len(data) // 2, max(credit - 1, 1))
            sock.sendall(encode_frame(FrameKind.DATA, data[:cut]))
            outcome.bytes_sent = cut
            # Go silent until the daemon evicts us (or the cap elapses);
            # skip CREDIT replenishments for the bytes already ingested.
            deadline = time.monotonic() + (
                stall_seconds if stall_seconds is not None else timeout
            )
            try:
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    sock.settimeout(remaining)
                    reply = recv_frame_sync(sock)
                    if reply is None:
                        break
                    if reply.kind is FrameKind.ERR:
                        outcome.err = reply.json()
                        break
            except (socketlib.timeout, ProtocolError, ConnectionError):
                pass
            return outcome

        if mode == "garbage":
            payload = b"this is not a wtrc stream " * 8
            sock.sendall(encode_frame(FrameKind.DATA, payload[:credit]))
            outcome.bytes_sent = min(len(payload), credit)
        elif mode == "corrupt":
            # Valid header, then a flipped byte inside the first chunk's
            # payload region.
            broken = bytearray(data)
            target = min(len(broken) - 1, 24)
            broken[target] ^= 0xFF
            sock.sendall(encode_frame(FrameKind.DATA, bytes(broken[:credit])))
            sock.sendall(encode_frame(FrameKind.FIN))
            outcome.bytes_sent = min(len(broken), credit)
        elif mode == "oversized":
            # Real stream header, then an EVENTS chunk declaring 256 MiB.
            from repro.runtime.tracefile import _EVENTS, FORMAT_VERSION, MAGIC

            evil = (
                MAGIC
                + bytes([FORMAT_VERSION, _EVENTS])
                + _uvarint(256 * 1024 * 1024)
            )
            sock.sendall(encode_frame(FrameKind.DATA, evil))
            outcome.bytes_sent = len(evil)
        elif mode == "overdraft":
            # One DATA frame a single byte past the granted window: the
            # server's credit check fires before any payload is decoded.
            blob = data.ljust(credit + 1, b"\x00")[: credit + 1]
            sock.sendall(encode_frame(FrameKind.DATA, blob))
            outcome.bytes_sent = len(blob)
        # All three wait for the server's classification.
        try:
            while True:
                reply = recv_frame_sync(sock)
                if reply is None:
                    return outcome
                if reply.kind is FrameKind.ERR:
                    outcome.err = reply.json()
                    return outcome
        except (ProtocolError, socketlib.timeout, ConnectionError):
            return outcome
    except (ConnectionError, socketlib.timeout, ProtocolError):
        # The server classified and hung up while we were still
        # misbehaving — exactly the point; report what we have.
        return outcome
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _uvarint(value: int) -> bytes:
    out: List[int] = []
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)
