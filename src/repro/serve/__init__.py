"""``repro.serve`` — the fleet-mode trace-ingestion daemon (``wolf serve``).

The ROADMAP's "always-on trace-ingestion service": a long-running asyncio
daemon that accepts concurrent ``.wtrc`` streams from many producer
processes over a unix socket (or TCP), feeds each stream into its own
incremental :class:`~repro.core.streaming.StreamingDetector`, and emits
per-stream defect reports plus a sealed ``run_manifest.json`` per run.
Robustness is the point of the package:

* :mod:`repro.serve.protocol` — the framed wire protocol with
  credit-based backpressure (a misbehaving producer stalls, never OOMs
  the daemon);
* :mod:`repro.serve.journal` — the chunk-granularity crash-recovery
  journal (kill -9 the daemon; restart resumes partially-ingested
  streams and never re-analyzes completed ones);
* :mod:`repro.serve.session` — per-stream ingestion state machine
  (decode, detect, spool, quarantine);
* :mod:`repro.serve.server` — the asyncio daemon: accept → ingest →
  detect → drain, idle-timeout eviction, graceful SIGTERM drain;
* :mod:`repro.serve.client` — the producer shim and the chaos client
  (kill mid-chunk, stall, garbage, oversized, duplicate, reconnect);
* :mod:`repro.serve.report` — the canonical per-stream defect report,
  byte-identical to ``wolf analyze-trace --json`` on the same trace;
* :mod:`repro.serve.health` — ``/healthz`` + ``/stats`` documents;
* :mod:`repro.serve.supervisor` — the multi-process fleet: N workers
  behind SO_REUSEPORT or a stream-id hash router, health-probed,
  restart-on-crash, one merged manifest at drain;
* :mod:`repro.serve.rollup` — deterministic fleet-wide defect rollups
  (``wolf fleet report``), byte-identical at any worker count.
"""

from repro.serve.client import ChaosOutcome, SendResult, chaos_client, send_trace
from repro.serve.health import ServeStats
from repro.serve.journal import JournalState, RunJournal
from repro.serve.protocol import (
    DEFAULT_WINDOW,
    MAX_FRAME,
    PROTOCOL_VERSION,
    WRONG_WORKER,
    Frame,
    FrameKind,
    ProtocolError,
    shard_of,
)
from repro.serve.rollup import (
    ROLLUP_SCHEMA,
    render_rollup,
    rollup_reports,
    rollup_run_dirs,
)
from repro.serve.report import (
    REPORT_SCHEMA,
    defect_report_doc,
    render_report,
    report_doc_for_file,
)
from repro.serve.server import (
    RUN_MANIFEST_NAME,
    RUN_SCHEMA,
    ServeConfig,
    WolfServer,
    query_server,
)
from repro.serve.supervisor import (
    FLEET_NAME,
    MERGED_RUN_SCHEMA,
    FleetConfig,
    FleetSupervisor,
    fleet_status,
    merge_manifests,
)

__all__ = [
    "ChaosOutcome",
    "DEFAULT_WINDOW",
    "FLEET_NAME",
    "FleetConfig",
    "FleetSupervisor",
    "Frame",
    "FrameKind",
    "JournalState",
    "MAX_FRAME",
    "MERGED_RUN_SCHEMA",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REPORT_SCHEMA",
    "ROLLUP_SCHEMA",
    "RUN_MANIFEST_NAME",
    "RUN_SCHEMA",
    "RunJournal",
    "SendResult",
    "ServeConfig",
    "ServeStats",
    "WRONG_WORKER",
    "WolfServer",
    "chaos_client",
    "defect_report_doc",
    "fleet_status",
    "merge_manifests",
    "query_server",
    "render_report",
    "render_rollup",
    "report_doc_for_file",
    "rollup_reports",
    "rollup_run_dirs",
    "send_trace",
    "shard_of",
]
