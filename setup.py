"""Setuptools shim.

This environment ships setuptools 65 without the ``wheel`` package, so
PEP-660 editable installs (``pip install -e .``) cannot build the editable
wheel.  ``python setup.py develop`` (or ``make develop``) installs the
package in editable mode without needing ``bdist_wheel``.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
