"""Ablations of WOLF's design choices (DESIGN.md §6).

* **Replay guidance**: the same target deadlock replayed with (a) the
  synchronization dependency graph (WOLF), (b) pure random scheduling,
  (c) DeadlockFuzzer's abstraction pausing — isolating how much of the
  hit rate each mechanism buys.
* **Pruner ablation**: pipeline cost and downstream cycle counts with the
  Pruner disabled (every cycle goes to the Generator/Replayer).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import pedantic
from repro.baselines.deadlockfuzzer import DeadlockFuzzer, DfConfig, df_is_hit
from repro.core.detector import ExtendedDetector
from repro.core.generator import Generator, GeneratorVerdict
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.core.replayer import Replayer, is_hit
from repro.runtime.sim.runtime import run_program
from repro.runtime.sim.strategy import RandomStrategy
from repro.util.rng import DeterministicRNG
from repro.workloads.figures import fig9_program
from repro.workloads.jigsaw import jigsaw_program

RUNS = 10
CROSS = frozenset({"Collections.java:1570", "Collections.java:1567"})


@pytest.fixture(scope="module")
def fig9_target():
    run = run_detection(fig9_program, 0, name="fig9")
    detection = ExtendedDetector().analyze(run.trace)
    survivors = Pruner(detection.vclocks).prune(detection.cycles).survivors
    gen = Generator(detection.relation).run(survivors)
    return next(
        d
        for d in gen.decisions
        if d.cycle.sites == CROSS and d.verdict is GeneratorVerdict.UNKNOWN
    )


def test_replay_gs_guided(benchmark, fig9_target):
    replayer = Replayer(fig9_program, name="fig9", seed=0)

    def run():
        return replayer.replay(fig9_target, attempts=RUNS, stop_on_hit=False).hits

    hits = pedantic(benchmark, run)
    benchmark.extra_info.update(hits=hits, runs=RUNS, mode="Gs-guided (WOLF)")
    assert hits == RUNS  # the paper's "reliably reproduces"


def test_replay_random_only(benchmark, fig9_target):
    """No guidance at all: hit only if random scheduling happens to
    deadlock at exactly the target sites."""

    def run():
        hits = 0
        for k in range(RUNS):
            seed = DeterministicRNG(0).fork(f"rand:{k}").seed
            result = run_program(fig9_program, RandomStrategy(seed), name="fig9")
            hits += is_hit(result, fig9_target.gs)
        return hits

    hits = pedantic(benchmark, run)
    benchmark.extra_info.update(hits=hits, runs=RUNS, mode="random")
    assert hits < RUNS  # random cannot match guided replay here


def test_replay_df_abstractions(benchmark, fig9_target):
    fuzzer = DeadlockFuzzer(config=DfConfig(seed=0))

    def run():
        hits = 0
        for k in range(RUNS):
            seed = DeterministicRNG(0).fork(f"df:{k}").seed
            result = fuzzer.replay_once(
                fig9_program, fig9_target.cycle, seed, name="fig9"
            )
            hits += df_is_hit(result, fig9_target.cycle)
        return hits

    hits = pedantic(benchmark, run)
    benchmark.extra_info.update(hits=hits, runs=RUNS, mode="DF abstractions")
    assert hits == 0  # the Figure 9 confusion


@pytest.fixture(scope="module")
def jigsaw_detection():
    run = run_detection(jigsaw_program, 0, name="Jigsaw")
    return ExtendedDetector().analyze(run.trace)


def test_pipeline_with_pruner(benchmark, jigsaw_detection):
    detection = jigsaw_detection

    def run():
        survivors = Pruner(detection.vclocks).prune(detection.cycles).survivors
        gen = Generator(detection.relation).run(survivors)
        return len(gen.decisions)

    downstream = pedantic(benchmark, run)
    benchmark.extra_info["cycles_to_replay"] = downstream


def test_pipeline_without_pruner(benchmark, jigsaw_detection):
    """Ablated: every cycle hits the Generator; the Pruner's FPs become
    replay work (each a wasted multi-attempt reproduction)."""
    detection = jigsaw_detection

    def run():
        gen = Generator(detection.relation).run(detection.cycles)
        return len(gen.decisions)

    downstream = pedantic(benchmark, run)
    with_pruner = len(
        Pruner(detection.vclocks).prune(detection.cycles).survivors
    )
    benchmark.extra_info.update(
        cycles_to_replay=downstream, with_pruner=with_pruner
    )
    assert downstream > with_pruner  # the Pruner really removes work
