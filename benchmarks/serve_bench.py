"""Fleet ingestion throughput benchmark (``wolf serve --workers N``).

Measures the aggregate durability-bound ingestion rate of the serve tier
at 1, 2 and 4 workers, plus per-stream latency percentiles, and checks
that the fleet-wide rollup is byte-identical regardless of worker count.

The per-stream cost has two parts: the durable frame loop (spool write +
fsync + journal append + fsync per chunk-crossing DATA frame) and the
FIN-time analysis (native kernel + sync-preserving prediction pass).
Both are process-local, so N worker processes scale them across N cores
with no shared state — the whole point of the tier.  The scaling ceiling
is therefore ``min(workers, cores)``: on a multi-core runner
``speedup_4v1`` approaches 4, while on a single-core box it sits near
1.0 (the fsyncs overlap, but analysis CPU serializes on the one core).
The committed ``BENCH_serve.json`` records an honest number for the box
it ran on — ``config.cpus`` says what that was — and CI gates on the
*internal ratio* (``scaling.speedup_4v1`` vs the committed baseline,
same box class), which is machine-comparable, not on absolute events/s.

Each worker count runs the real CLI: ``--workers 1`` is the plain
single-process daemon (the pre-fleet baseline path), ``--workers N``
spawns the supervisor and N workers.  Producers connect straight to the
owning worker's unix socket (computed with the shared ``shard_of``
contract) so the measurement covers the ingestion tier itself, not the
supervisor's portability proxy.

Usage::

    python benchmarks/serve_bench.py --out BENCH_serve.json
    python benchmarks/serve_bench.py --streams 12 --out /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import socket as socketmod
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core.pipeline import run_detection  # noqa: E402
from repro.runtime.tracefile import write_trace  # noqa: E402
from repro.serve import send_trace, shard_of  # noqa: E402
from repro.serve.rollup import render_rollup, rollup_run_dirs  # noqa: E402
from repro.workloads.philosophers import make_philosophers  # noqa: E402

SCHEMA = "bench-serve/1"

#: Durability-bound shipping knobs: tiny chunks, small slices, so the
#: journal+spool fsyncs (not Python parsing) dominate each DATA frame.
EVENTS_PER_CHUNK = 4
SLICE_BYTES = 512

#: Long deadlock-free workloads (ordered philosophers, many meals) so
#: every stream ships hundreds of DATA frames — the registry benchmarks
#: are all under ~2 KiB, which measures per-stream setup, not ingestion.
MEALS = (600, 800, 1000)


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return None
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _wait_sockets(paths, procs, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    pending = list(paths)
    while pending:
        for proc in procs:
            if proc.poll() is not None:
                out = proc.stdout.read() if proc.stdout else ""
                raise RuntimeError(f"daemon died at startup:\n{out}")
        still = []
        for p in pending:
            s = socketmod.socket(socketmod.AF_UNIX)
            try:
                s.connect(p)
            except OSError:
                still.append(p)
            finally:
                s.close()
        pending = still
        if pending:
            if time.monotonic() > deadline:
                raise RuntimeError(f"sockets never came up: {pending}")
            time.sleep(0.05)


def run_fleet(workers, traces, streams, producers, out_dir):
    """One measured run: start the tier, ship `streams` traces, drain."""
    sock = os.path.join(out_dir, "wolf.sock")
    run_dir = os.path.join(out_dir, "run")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", sock, "--out", run_dir,
            "--workers", str(workers),
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        if workers == 1:
            owner_sock = {0: sock}
        else:
            owner_sock = {
                k: os.path.join(run_dir, "workers", f"w{k}", "worker.sock")
                for k in range(workers)
            }
        _wait_sockets(sorted(set(owner_sock.values())), [daemon])

        jobs = [
            (f"bench-{i}", traces[i % len(traces)]) for i in range(streams)
        ]
        latencies = []
        errors = []
        lock = threading.Lock()
        it = iter(jobs)

        def producer():
            while True:
                with lock:
                    job = next(it, None)
                if job is None:
                    return
                sid, trace = job
                target = owner_sock[shard_of(sid, workers)]
                t0 = time.perf_counter()
                res = send_trace(
                    trace, sid, socket_path=target, slice_bytes=SLICE_BYTES
                )
                dt = time.perf_counter() - t0
                with lock:
                    if res.ok:
                        latencies.append(dt)
                    else:
                        errors.append((sid, res.error_code))

        t_start = time.perf_counter()
        threads = [
            threading.Thread(target=producer) for _ in range(producers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t_start
        if errors:
            raise RuntimeError(f"streams failed: {errors}")

        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=120)
        if code != 0:
            out = daemon.stdout.read() if daemon.stdout else ""
            raise RuntimeError(f"drain exited {code}:\n{out}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    latencies.sort()
    return {
        "wall_s": wall,
        "latencies": latencies,
        "rollup": render_rollup(rollup_run_dirs([run_dir])),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=24)
    parser.add_argument("--producers", type=int, default=8)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to measure (default: 1 2 4)",
    )
    parser.add_argument("--out", default=None, help="write the JSON here")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="serve-bench-")
    try:
        names = [f"phil4-m{m}" for m in MEALS]
        traces, counts = [], {}
        for m, name in zip(MEALS, names):
            prog = make_philosophers(4, ordered=True, meals=m)
            run = run_detection(prog, 1, name=name)
            path = os.path.join(tmp, f"{name}.wtrc")
            write_trace(run.trace, path, events_per_chunk=EVENTS_PER_CHUNK)
            traces.append(path)
            counts[path] = len(run.trace)
        # Total events shipped per measured run (streams cycle the pool).
        total_events = sum(
            counts[traces[i % len(traces)]] for i in range(args.streams)
        )

        results, rollups = {}, {}
        for n in args.workers:
            out_dir = os.path.join(tmp, f"w{n}")
            os.makedirs(out_dir)
            r = run_fleet(n, traces, args.streams, args.producers, out_dir)
            lat = r["latencies"]
            results[str(n)] = {
                "streams": args.streams,
                "events": total_events,
                "wall_s": round(r["wall_s"], 4),
                "events_per_s": round(total_events / r["wall_s"], 1),
                "p50_stream_s": round(_percentile(lat, 0.50), 4),
                "p99_stream_s": round(_percentile(lat, 0.99), 4),
            }
            rollups[str(n)] = r["rollup"]
            print(
                f"workers={n}: {results[str(n)]['events_per_s']} events/s "
                f"(wall {results[str(n)]['wall_s']}s, "
                f"p50 {results[str(n)]['p50_stream_s']}s, "
                f"p99 {results[str(n)]['p99_stream_s']}s)"
            )

        base = results.get("1", {}).get("events_per_s")
        scaling = {}
        for n in args.workers:
            if n != 1 and base:
                scaling[f"speedup_{n}v1"] = round(
                    results[str(n)]["events_per_s"] / base, 3
                )
        first = rollups[str(args.workers[0])]
        identical = all(r == first for r in rollups.values())
        if not identical:
            print("FAIL: rollup diverges across worker counts", file=sys.stderr)
            return 1

        doc = {
            "schema": SCHEMA,
            "generated_by": "benchmarks/serve_bench.py",
            "config": {
                "streams": args.streams,
                "producers": args.producers,
                "slice_bytes": SLICE_BYTES,
                "events_per_chunk": EVENTS_PER_CHUNK,
                "traces": names,
                "total_events": total_events,
                "cpus": os.cpu_count(),
            },
            "workers": results,
            "scaling": scaling,
            "identity": {"rollup_identical": identical},
            "note": (
                "scaling ceiling is min(workers, cpus): worker processes "
                "scale per-stream analysis CPU across cores; on a "
                "single-core box speedup_4v1 ~ 1.0 by construction"
            ),
        }
        text = json.dumps(doc, indent=2, sort_keys=False) + "\n"
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        for key, val in scaling.items():
            print(f"{key}: {val}x")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
