"""Microbenchmarks of the analysis stages on a synthetic heavy trace.

These measure the costs behind Table 1's slowdown column: runtime event
throughput, ``D_sigma`` construction, vector clocks, cycle detection and
``Gs`` construction.
"""

from __future__ import annotations

import pytest

from repro.core.detector import ExtendedDetector, find_cycles
from repro.core.lockdep import build_lockdep
from repro.core.syncgraph import build_sync_graph
from repro.core.vclock import compute_vector_clocks
from repro.runtime.sim.runtime import run_program
from repro.runtime.sim.strategy import RandomStrategy


def heavy_program(n_threads: int = 4, n_locks: int = 6, iters: int = 25):
    """Threads repeatedly take ordered lock pairs (no deadlocks), plus one
    inverted pair to seed cycles."""

    def program(rt):
        locks = [rt.new_lock(name=f"L{i}", site="heavy:locks") for i in range(n_locks)]

        def worker(k: int) -> None:
            for i in range(iters):
                a = locks[(k + i) % n_locks]
                b = locks[(k + i + 1) % n_locks]
                first, second = (a, b) if id(a) < id(b) else (b, a)
                with first.at(f"w{k}:outer"):
                    with second.at(f"w{k}:inner"):
                        pass

        handles = [
            rt.spawn(lambda k=i: worker(k), name=f"w{i}", site="heavy:spawn")
            for i in range(n_threads)
        ]
        for h in handles:
            h.join()

    return program


@pytest.fixture(scope="module")
def heavy_trace():
    result = run_program(heavy_program(), RandomStrategy(0, stickiness=0.9))
    result.raise_errors()
    return result.trace


def test_runtime_event_throughput(benchmark):
    program = heavy_program()

    def run():
        return run_program(program, RandomStrategy(0, stickiness=0.9)).steps

    steps = benchmark(run)
    assert steps > 200
    benchmark.extra_info["events"] = steps


def test_build_lockdep(benchmark, heavy_trace):
    rel = benchmark(build_lockdep, heavy_trace)
    assert len(rel) > 100
    benchmark.extra_info["entries"] = len(rel)


def test_vector_clocks(benchmark, heavy_trace):
    st = benchmark(compute_vector_clocks, heavy_trace)
    assert st.acquire_tau


def test_cycle_detection(benchmark, heavy_trace):
    rel = build_lockdep(heavy_trace)

    def run():
        return find_cycles(rel, max_length=3)

    cycles, truncated = benchmark(run)
    benchmark.extra_info["cycles"] = len(cycles)


def test_full_detector(benchmark, heavy_trace):
    detector = ExtendedDetector(max_length=3)
    detection = benchmark(detector.analyze, heavy_trace)
    benchmark.extra_info["cycles"] = len(detection.cycles)


def test_sync_graph_construction(benchmark):
    from repro.workloads.figures import fig9_program
    from repro.core.pipeline import run_detection

    run = run_detection(fig9_program, 0)
    detection = ExtendedDetector().analyze(run.trace)
    cycle = detection.cycles[0]

    gs = benchmark(build_sync_graph, cycle, detection.relation)
    assert gs.num_vertices() > 0
    benchmark.extra_info["vertices"] = gs.num_vertices()
