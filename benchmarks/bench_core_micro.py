"""Microbenchmarks of the analysis stages on a synthetic heavy trace.

These measure the costs behind Table 1's slowdown column: runtime event
throughput, ``D_sigma`` construction, vector clocks, cycle detection and
``Gs`` construction — plus batch-vs-streaming engine and JSON-vs-binary
trace-format comparisons.

Run under pytest-benchmark for statistical timings, or directly —

    python benchmarks/bench_core_micro.py --events 120000 --out BENCH_core.json

— to emit the machine-readable comparison (used by the CI perf-smoke job):
a >=100k-event synthetic stream is recorded and analyzed end-to-end both
ways (batch engine + JSON file vs streaming engine + binary file), with
wall times, peak memory (tracemalloc) and file sizes, asserting both
engines find identical cycles.

Schema ``bench-core/4`` (migration note): adds to ``macro`` the analyze
stages ``analyze_s.streaming_binary_mmap`` (pure-Python zero-copy mmap
reader) and ``analyze_s.streaming_binary_native`` (compiled kernel, null
when no C compiler is available), per-stage throughput dicts
``record_events_per_s`` / ``analyze_events_per_s``, the
``analyze_speedup`` ratios (``native`` and ``mmap``, both relative to
the plain pure-Python streaming analyze) and ``native_kernel`` (version
string or null).  ``bench-core/3`` documents simply lack these keys —
the perf gate SKIPs ratios missing from the baseline, so stale baselines
degrade gracefully.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
import tracemalloc
from typing import Iterator, List, Tuple

import pytest

from repro.core.detector import ExtendedDetector, find_cycles
from repro.core.lockdep import build_lockdep
from repro.core.streaming import StreamingDetector
from repro.core.syncgraph import build_sync_graph
from repro.core.vclock import compute_vector_clocks
from repro.runtime.events import (
    AcquireEvent,
    BeginEvent,
    EndEvent,
    JoinEvent,
    ReleaseEvent,
    SpawnEvent,
    Trace,
    TraceEvent,
)
from repro.runtime.serialize import dump_trace, load_trace
from repro.runtime.sim.runtime import run_program
from repro.runtime.sim.strategy import RandomStrategy
from repro.runtime.tracefile import TraceFileReader, TraceFileWriter, write_trace
from repro.util.ids import ExecIndex, LockId, ThreadId


def heavy_program(n_threads: int = 4, n_locks: int = 6, iters: int = 25):
    """Threads repeatedly take ordered lock pairs (no deadlocks), plus one
    inverted pair to seed cycles."""

    def program(rt):
        locks = [rt.new_lock(name=f"L{i}", site="heavy:locks") for i in range(n_locks)]

        def worker(k: int) -> None:
            for i in range(iters):
                a = locks[(k + i) % n_locks]
                b = locks[(k + i + 1) % n_locks]
                first, second = (a, b) if id(a) < id(b) else (b, a)
                with first.at(f"w{k}:outer"):
                    with second.at(f"w{k}:inner"):
                        pass

        handles = [
            rt.spawn(lambda k=i: worker(k), name=f"w{i}", site="heavy:spawn")
            for i in range(n_threads)
        ]
        for h in handles:
            h.join()

    return program


@pytest.fixture(scope="module")
def heavy_trace():
    result = run_program(heavy_program(), RandomStrategy(0, stickiness=0.9))
    result.raise_errors()
    return result.trace


def test_runtime_event_throughput(benchmark):
    program = heavy_program()

    def run():
        return run_program(program, RandomStrategy(0, stickiness=0.9)).steps

    steps = benchmark(run)
    assert steps > 200
    benchmark.extra_info["events"] = steps


def test_build_lockdep(benchmark, heavy_trace):
    rel = benchmark(build_lockdep, heavy_trace)
    assert len(rel) > 100
    benchmark.extra_info["entries"] = len(rel)


def test_vector_clocks(benchmark, heavy_trace):
    st = benchmark(compute_vector_clocks, heavy_trace)
    assert st.acquire_tau


def test_cycle_detection(benchmark, heavy_trace):
    rel = build_lockdep(heavy_trace)

    def run():
        return find_cycles(rel, max_length=3)

    cycles, truncated = benchmark(run)
    benchmark.extra_info["cycles"] = len(cycles)


def test_full_detector(benchmark, heavy_trace):
    detector = ExtendedDetector(max_length=3)
    detection = benchmark(detector.analyze, heavy_trace)
    benchmark.extra_info["cycles"] = len(detection.cycles)


def test_sync_graph_construction(benchmark):
    from repro.workloads.figures import fig9_program
    from repro.core.pipeline import run_detection

    run = run_detection(fig9_program, 0)
    detection = ExtendedDetector().analyze(run.trace)
    cycle = detection.cycles[0]

    gs = benchmark(build_sync_graph, cycle, detection.relation)
    assert gs.num_vertices() > 0
    benchmark.extra_info["vertices"] = gs.num_vertices()


# ---------------------------------------------------------------------------
# Engine comparison: batch (three passes) vs streaming (one fused pass)
# ---------------------------------------------------------------------------


def test_batch_engine(benchmark, heavy_trace):
    detector = ExtendedDetector(max_length=3)
    detection = benchmark(detector.analyze, heavy_trace)
    benchmark.extra_info["cycles"] = len(detection.cycles)


def test_streaming_engine(benchmark, heavy_trace):
    def run():
        return StreamingDetector(max_length=3).analyze(heavy_trace)

    detection = benchmark(run)
    benchmark.extra_info["cycles"] = len(detection.cycles)
    ref = ExtendedDetector(max_length=3).analyze(heavy_trace)
    assert [tuple(e.step for e in c.entries) for c in detection.cycles] == [
        tuple(e.step for e in c.entries) for c in ref.cycles
    ]


# ---------------------------------------------------------------------------
# Trace format comparison: JSON machine format vs compact binary
# ---------------------------------------------------------------------------


def test_json_dump(benchmark, heavy_trace):
    text = benchmark(dump_trace, heavy_trace)
    benchmark.extra_info["bytes"] = len(text)


def test_json_load(benchmark, heavy_trace):
    text = dump_trace(heavy_trace)
    trace = benchmark(load_trace, text)
    assert len(trace) == len(heavy_trace)


def test_binary_write(benchmark, heavy_trace):
    def run():
        buf = io.BytesIO()
        return write_trace(heavy_trace, buf)

    n = benchmark(run)
    benchmark.extra_info["bytes"] = n


def test_binary_read(benchmark, heavy_trace):
    buf = io.BytesIO()
    write_trace(heavy_trace, buf)
    payload = buf.getvalue()

    def run():
        with TraceFileReader(io.BytesIO(payload)) as r:
            return sum(1 for _ in r)

    n = benchmark(run)
    assert n == len(heavy_trace)


# ---------------------------------------------------------------------------
# Macro comparison + BENCH_core.json emitter (CI perf smoke)
# ---------------------------------------------------------------------------


def synthetic_events(
    n_events: int,
    n_threads: int = 8,
    n_locks: int = 16,
    nested_every: int = 100,
    invert_pairs: int = 1,
) -> Iterator[TraceEvent]:
    """Yield a consistent synchronization stream of >= ``n_events`` events.

    Most iterations acquire a single lock (empty lockset => no ``D_sigma``
    holder-list growth); every ``nested_every``-th iteration takes a
    strictly ordered lock pair, and thread pairs (2p, 2p+1) for
    ``p < invert_pairs`` invert the lock pair at ``8p`` on their first
    nested iteration — so the detectors have exactly ``invert_pairs``
    2-cycle families to find (in disjoint lock SCCs) and the cycle search
    stays output-bounded as the stream grows.  With ``nested_every=1``
    every iteration is a nested pair: the relation is dominated by
    duplicate tuples, the loop-heavy shape the sharded enumerator
    collapses.  Iterations are emitted atomically round-robin, so no two
    threads ever hold a lock simultaneously: the stream is a valid
    execution.
    """
    root = ThreadId.root()
    threads = [
        ThreadId(root, "syn:spawn", i, name=f"w{i}") for i in range(n_threads)
    ]
    locks = [LockId(root, "syn:lock", i, name=f"L{i}") for i in range(n_locks)]
    step = 0

    def nxt() -> int:
        nonlocal step
        step += 1
        return step - 1

    yield BeginEvent(nxt(), root)
    for t in threads:
        yield SpawnEvent(nxt(), root, child=t)
    for t in threads:
        yield BeginEvent(nxt(), t)

    occ: dict = {}

    def index(t: ThreadId, site: str) -> ExecIndex:
        k = (t, site)
        occ[k] = occ.get(k, 0) + 1
        return ExecIndex(t, site, occ[k])

    # ~2 events per single iteration; stop once the target is reached.
    budget = n_events - (2 + 4 * n_threads)  # header + End/Join tail
    i = 0
    while budget > 0:
        for k, t in enumerate(threads):
            if i % nested_every == 0:
                a = locks[(k + i) % n_locks]
                b = locks[(k + i + 1) % n_locks]
                first, second = (a, b) if a.seq < b.seq else (b, a)
                if i == 0 and k < 2 * invert_pairs:
                    # Thread 2p takes L[8p] then L[8p+1]; thread 2p+1 the
                    # reverse — one inverted pair per disjoint lock SCC.
                    base = 8 * (k // 2) % n_locks
                    first, second = (
                        (locks[base], locks[base + 1])
                        if k % 2 == 0
                        else (locks[base + 1], locks[base])
                    )
                site_o, site_i = f"syn:{k}:outer", f"syn:{k}:inner"
                ix1 = index(t, site_o)
                yield AcquireEvent(
                    nxt(), t, lock=first, index=ix1, held=(), held_indices=(),
                    stack_depth=2,
                )
                yield AcquireEvent(
                    nxt(), t, lock=second, index=index(t, site_i),
                    held=(first,), held_indices=(ix1,), stack_depth=3,
                )
                yield ReleaseEvent(nxt(), t, lock=second, site=site_i)
                yield ReleaseEvent(nxt(), t, lock=first, site=site_o)
                budget -= 4
            else:
                lk = locks[(k + i) % n_locks]
                site = f"syn:{k}:solo"
                yield AcquireEvent(
                    nxt(), t, lock=lk, index=index(t, site), held=(),
                    held_indices=(), stack_depth=2,
                )
                yield ReleaseEvent(nxt(), t, lock=lk, site=site)
                budget -= 2
        i += 1

    for t in threads:
        yield EndEvent(nxt(), t)
    for t in threads:
        yield JoinEvent(nxt(), root, target=t)
    yield EndEvent(nxt(), root)


def _wall(fn) -> Tuple[float, object]:
    """(wall seconds, result) — no instrumentation overhead."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _best_wall(fn, n: int = 3) -> Tuple[float, object]:
    """(best-of-``n`` wall seconds, last result).

    The analyze-stage ratios gate CI at 25% tolerance, and the native
    stage is tens of milliseconds — single-shot timings swing the ratio
    by 2x on scheduler noise alone.  Min-of-3 is stable; the first run
    also absorbs one-time costs (kernel dlopen, page-cache warmup) for
    every stage equally.
    """
    best, result = _wall(fn)
    for _ in range(n - 1):
        s, result = _wall(fn)
        best = min(best, s)
    return best, result


def _peak_mib(fn) -> float:
    """tracemalloc peak in MiB over a *separate* run of ``fn`` (tracing
    slows execution several-fold, so never time and trace the same run)."""
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / (1024 * 1024)


def _cycle_steps(detection) -> List[Tuple[int, ...]]:
    return [tuple(e.step for e in c.entries) for c in detection.cycles]


def run_macro(n_events: int, tmp_dir: str) -> dict:
    """End-to-end comparison on a synthetic stream: batch engine + JSON
    file vs streaming engine + binary file, record + analyze."""
    import os

    json_path = os.path.join(tmp_dir, "macro.json")
    bin_path = os.path.join(tmp_dir, "macro.wtrc")

    # -- record: materialize + dump (batch path) ----------------------------
    def record_json():
        trace = Trace(program="synthetic", seed=0)
        for ev in synthetic_events(n_events):
            trace.append(ev)
        with open(json_path, "w") as fh:
            fh.write(dump_trace(trace))
        return len(trace)

    rec_json_s, total = _wall(record_json)
    rec_json_mb = _peak_mib(record_json)

    # -- record: straight-to-disk sink (streaming path) ---------------------
    def record_binary():
        with TraceFileWriter(bin_path, program="synthetic", seed=0) as w:
            for ev in synthetic_events(n_events):
                w.write_event(ev)

    rec_bin_s, _ = _wall(record_binary)
    rec_bin_mb = _peak_mib(record_binary)

    # -- analyze: parse whole file, three batch passes ----------------------
    def analyze_batch():
        with open(json_path) as fh:
            trace = load_trace(fh.read())
        return ExtendedDetector(max_length=3).analyze(trace)

    ana_json_s, batch = _wall(analyze_batch)
    ana_json_mb = _peak_mib(analyze_batch)

    # -- analyze: decode + analyze one event at a time ----------------------
    def analyze_streaming():
        det = StreamingDetector(max_length=3)
        with TraceFileReader(bin_path) as reader:
            det.feed_many(reader)
        return det.finish()

    ana_bin_s, stream = _best_wall(analyze_streaming)
    ana_bin_mb = _peak_mib(analyze_streaming)

    # -- analyze: same pure-Python detector over the zero-copy mmap reader --
    def analyze_mmap():
        det = StreamingDetector(max_length=3)
        with TraceFileReader(bin_path, mmap=True) as reader:
            det.feed_many(reader)
        return det.finish()

    ana_mmap_s, stream_mmap = _best_wall(analyze_mmap)

    # -- analyze: compiled kernel over the mmap'd file (if a cc exists) -----
    from repro.core.nativekernel import analyze_trace_file, kernel_available
    from repro.core.nativekernel import kernel_version

    if kernel_available():
        def analyze_native():
            return analyze_trace_file(
                bin_path, max_length=3, backend="native"
            ).detection

        ana_native_s, stream_native = _best_wall(analyze_native)
        native_kernel = kernel_version()
    else:
        ana_native_s = stream_native = native_kernel = None

    assert _cycle_steps(batch) == _cycle_steps(stream), (
        "engines disagree on the synthetic trace"
    )
    assert _cycle_steps(stream_mmap) == _cycle_steps(stream), (
        "mmap reader diverges from the plain reader"
    )
    if stream_native is not None:
        assert _cycle_steps(stream_native) == _cycle_steps(stream), (
            "native kernel diverges from the pure-Python engine"
        )
    import os as _os

    json_bytes = _os.path.getsize(json_path)
    bin_bytes = _os.path.getsize(bin_path)
    e2e_batch = rec_json_s + ana_json_s
    e2e_stream = rec_bin_s + ana_bin_s

    def _eps(seconds):
        """Events/second, or None for a stage that did not run."""
        return None if seconds is None else round(total / seconds)

    return {
        "events": total,
        "cycles": len(batch.cycles),
        "engines_identical": True,
        "native_kernel": native_kernel,
        "file_bytes": {
            "json": json_bytes,
            "binary": bin_bytes,
            "ratio": round(json_bytes / bin_bytes, 2),
        },
        "record_s": {"batch_json": rec_json_s, "streaming_binary": rec_bin_s},
        "record_events_per_s": {
            "batch_json": _eps(rec_json_s),
            "streaming_binary": _eps(rec_bin_s),
        },
        "analyze_s": {
            "batch_json": ana_json_s,
            "streaming_binary": ana_bin_s,
            "streaming_binary_mmap": ana_mmap_s,
            "streaming_binary_native": ana_native_s,
        },
        "analyze_events_per_s": {
            "batch_json": _eps(ana_json_s),
            "streaming_binary": _eps(ana_bin_s),
            "streaming_binary_mmap": _eps(ana_mmap_s),
            "streaming_binary_native": _eps(ana_native_s),
        },
        "analyze_speedup": {
            # Both relative to the plain pure-Python streaming analyze.
            "mmap": round(ana_bin_s / ana_mmap_s, 2),
            "native": (
                None if ana_native_s is None
                else round(ana_bin_s / ana_native_s, 2)
            ),
        },
        "peak_mib": {
            "record_batch_json": round(rec_json_mb, 2),
            "record_streaming_binary": round(rec_bin_mb, 2),
            "analyze_batch_json": round(ana_json_mb, 2),
            "analyze_streaming_binary": round(ana_bin_mb, 2),
        },
        "end_to_end_s": {
            "batch_json": e2e_batch,
            "streaming_binary": e2e_stream,
            "speedup": round(e2e_batch / e2e_stream, 2),
        },
    }


def run_macro_sharded(n_events: int, tmp_dir: str) -> dict:
    """Loop-heavy macro: every iteration is a nested pair, so duplicate
    tuples dominate ``D_sigma``.  Times the monolithic DFS against the
    sharded+deduplicated enumerator on the identical relation (asserting
    identical cycles), and measures the zero-copy hand-off payload: the
    bytes a shard task pickles versus pickling the whole trace."""
    import os
    import pickle

    from repro.core.parallel import ShardEnumTask
    from repro.core.sharding import (
        _select_spans,
        dedupe_relation,
        find_cycles_sharded,
        partition_shards,
    )

    trace = Trace(program="synthetic-loopy", seed=0)
    for ev in synthetic_events(n_events, nested_every=1, invert_pairs=2):
        trace.append(ev)
    rel = build_lockdep(trace)

    mono_s, (mono, mono_trunc) = _wall(lambda: find_cycles(rel, max_length=3))
    shard_s, (cycles, trunc, stats) = _wall(
        lambda: find_cycles_sharded(rel, max_length=3)
    )
    mono_steps = [tuple(e.step for e in c.entries) for c in mono]
    shard_steps = [tuple(e.step for e in c.entries) for c in cycles]
    assert mono_steps == shard_steps and mono_trunc == trunc, (
        "sharded enumeration disagrees with the monolithic DFS"
    )
    assert [c.defect_key for c in mono] == [c.defect_key for c in cycles]

    # Zero-copy payload: what actually crosses the process boundary.
    bin_path = os.path.join(tmp_dir, "loopy.wtrc")
    with TraceFileWriter(bin_path, program="synthetic-loopy", seed=0) as w:
        for ev in trace:
            w.write_event(ev)
    spans = sorted(w.event_spans, key=lambda s: s.offset)
    shards, _, _ = partition_shards(dedupe_relation(rel))
    tasks = [
        ShardEnumTask(
            trace_path=bin_path,
            spans=_select_spans(spans, tuple(e.step for e in s.entries)),
            entry_steps=tuple(e.step for e in s.entries),
            max_length=3,
            max_cycles=10_000,
        )
        for s in shards
    ]
    task_bytes = max(len(pickle.dumps(t)) for t in tasks) if tasks else 0
    trace_bytes = len(pickle.dumps(trace))

    return {
        "events": len(trace),
        "entries": stats.n_entries,
        "dedup_keys": stats.n_keys,
        "duplicates_collapsed": stats.duplicates_collapsed,
        "shards": stats.n_shards,
        "singleton_sccs": stats.singleton_sccs,
        "cycles": len(cycles),
        "identical": True,
        "monolithic_s": round(mono_s, 6),
        "sharded_s": round(shard_s, 6),
        "speedup": round(mono_s / shard_s, 2),
        "stage_s": {k: round(v, 6) for k, v in stats.timings_s.items()},
        "handoff_bytes": {
            "largest_shard_task": task_bytes,
            "pickled_trace": trace_bytes,
            "ratio": round(trace_bytes / task_bytes, 1) if task_bytes else None,
        },
    }


def run_prediction() -> dict:
    """Sync-preserving prediction over every registry benchmark.

    Measures what the prediction tentpole claims: how many Generator
    survivors the pass decides (certifies or refutes) without replay,
    and what the pass itself costs on top of detection.  The decided
    ratio is machine-independent (pure trace analysis), so the perf gate
    can hold a floor under it.
    """
    from repro.core.generator import Generator, GeneratorVerdict
    from repro.core.parallel import predict_decisions
    from repro.core.pipeline import run_detection
    from repro.core.prediction import ClosureIndex
    from repro.core.pruner import Pruner
    from repro.workloads.registry import all_benchmarks

    counts = {"certified": 0, "refuted": 0, "undecided": 0}
    n_bench = 0
    candidates = 0
    predict_s = 0.0
    for b in all_benchmarks():
        n_bench += 1
        run = run_detection(b.program, b.detect_seed, name=b.name)
        detection = ExtendedDetector(max_length=b.max_cycle_length).analyze(
            run.trace
        )
        prune = Pruner(detection.vclocks).prune(detection.cycles)
        gen = Generator(detection.relation).run(prune.survivors)
        unknown = [
            d for d in gen.decisions if d.verdict is GeneratorVerdict.UNKNOWN
        ]
        if not unknown:
            continue
        candidates += len(unknown)
        t0 = time.perf_counter()
        index = ClosureIndex.from_events(run.trace)
        preds = predict_decisions(index, gen.decisions)
        predict_s += time.perf_counter() - t0
        for p in preds:
            if p is not None:
                counts[p.verdict.value] += 1
    decided = counts["certified"] + counts["refuted"]
    examined = sum(counts.values())
    return {
        "benchmarks": n_bench,
        "candidates": candidates,
        **counts,
        "decided_ratio": round(decided / examined, 4) if examined else None,
        "predict_s": round(predict_s, 6),
    }


def run_micro() -> dict:
    """Single-shot stage timings on the module's heavy trace (best of 3)."""
    result = run_program(heavy_program(), RandomStrategy(0, stickiness=0.9))
    result.raise_errors()
    trace = result.trace

    def best(fn, n=3):
        return min(_wall(fn)[0] for _ in range(n))

    rel = build_lockdep(trace)
    timings = {
        "build_lockdep_s": best(lambda: build_lockdep(trace)),
        "vector_clocks_s": best(lambda: compute_vector_clocks(trace)),
        "find_cycles_s": best(lambda: find_cycles(rel, max_length=3)),
        "batch_engine_s": best(
            lambda: ExtendedDetector(max_length=3).analyze(trace)
        ),
        "streaming_engine_s": best(
            lambda: StreamingDetector(max_length=3).analyze(trace)
        ),
        "json_dump_s": best(lambda: dump_trace(trace)),
        "binary_write_s": best(lambda: write_trace(trace, io.BytesIO())),
    }
    return {"events": len(trace), **{k: round(v, 6) for k, v in timings.items()}}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events", type=int, default=120_000,
        help="synthetic stream length for the macro comparison (>=100k)",
    )
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args(argv)

    import tempfile

    from repro.util.interrupt import INTERRUPT_EXIT_CODE, GracefulInterrupt

    # Ctrl-C between stages flushes whatever completed as a partial
    # document (interrupted=true) and exits EX_TEMPFAIL instead of
    # losing minutes of timings to a traceback.
    macro = sharding = micro = prediction = None
    with GracefulInterrupt() as interrupt, tempfile.TemporaryDirectory() as tmp:
        macro = run_macro(args.events, tmp)
        if not interrupt.triggered:
            sharding = run_macro_sharded(args.events, tmp)
        if not interrupt.triggered:
            micro = run_micro()
        if not interrupt.triggered:
            prediction = run_prediction()
    doc = {
        "schema": "bench-core/4",
        "macro": macro,
        "sharding": sharding,
        "micro": micro,
        "prediction": prediction,
    }
    if interrupt.triggered:
        doc["interrupted"] = True
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    if interrupt.triggered:
        print(f"interrupted: partial results flushed to {args.out}", file=sys.stderr)
        return INTERRUPT_EXIT_CODE
    speedup = macro["end_to_end_s"]["speedup"]
    print(
        f"{macro['events']} events: end-to-end "
        f"batch+json {macro['end_to_end_s']['batch_json']:.3f}s vs "
        f"streaming+binary {macro['end_to_end_s']['streaming_binary']:.3f}s "
        f"({speedup}x), file {macro['file_bytes']['ratio']}x smaller; "
        f"wrote {args.out}"
    )
    ana = macro["analyze_s"]
    asp = macro["analyze_speedup"]
    native_txt = (
        "unavailable (no C compiler)"
        if ana["streaming_binary_native"] is None
        else f"{ana['streaming_binary_native']:.3f}s ({asp['native']}x, "
        f"kernel {macro['native_kernel']})"
    )
    print(
        f"analyze {macro['events']} events: pure-python "
        f"{ana['streaming_binary']:.3f}s, mmap "
        f"{ana['streaming_binary_mmap']:.3f}s ({asp['mmap']}x), "
        f"native {native_txt}"
    )
    print(
        f"loop-heavy {sharding['events']} events: enumeration "
        f"monolithic {sharding['monolithic_s']:.3f}s vs sharded "
        f"{sharding['sharded_s']:.3f}s ({sharding['speedup']}x, "
        f"{sharding['duplicates_collapsed']} duplicates collapsed into "
        f"{sharding['dedup_keys']} keys, {sharding['shards']} shard(s)); "
        f"hand-off {sharding['handoff_bytes']['largest_shard_task']} B/task "
        f"vs {sharding['handoff_bytes']['pickled_trace']} B pickled trace"
    )
    print(
        f"prediction over {prediction['benchmarks']} benchmark(s): "
        f"{prediction['candidates']} candidate(s), "
        f"{prediction['certified']} certified, {prediction['refuted']} "
        f"refuted, {prediction['undecided']} undecided "
        f"({100.0 * prediction['decided_ratio']:.1f}% decided without "
        f"replay, {prediction['predict_s']:.3f}s)"
    )
    ok = True
    if speedup <= 1.0:
        print("FAIL: streaming+binary not faster end-to-end", file=sys.stderr)
        ok = False
    if asp["mmap"] < 1.2:
        print(
            "FAIL: mmap reader not >=1.2x faster than the plain pure-Python "
            f"streaming analyze (got {asp['mmap']}x)",
            file=sys.stderr,
        )
        ok = False
    if asp["native"] is None:
        print(
            "WARN: native kernel unavailable; >=10x analyze floor not checked",
            file=sys.stderr,
        )
    elif asp["native"] < 10.0:
        print(
            "FAIL: native kernel not >=10x faster than the pure-Python "
            f"streaming analyze (got {asp['native']}x)",
            file=sys.stderr,
        )
        ok = False
    if sharding["speedup"] < 3.0:
        print(
            "FAIL: sharded enumeration not >=3x faster than monolithic "
            f"DFS on the loop-heavy macro (got {sharding['speedup']}x)",
            file=sys.stderr,
        )
        ok = False
    if prediction["decided_ratio"] is None or prediction["decided_ratio"] < 0.6:
        print(
            "FAIL: prediction decides < 60% of registry candidates without "
            f"replay (got {prediction['decided_ratio']})",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
