"""CI smoke for the fleet-mode ingestion daemon (`wolf serve`).

One real daemon process, eight concurrent producers over the unix
socket — six honest, two chaos (one shipping garbage bytes, one killing
its connection mid-chunk and never returning).  The gate:

* every healthy stream is analyzed, its report byte-identical to the
  batch analyzer (``wolf analyze-trace --json``) on the same ``.wtrc``;
* both chaos streams are quarantined under their expected taxonomy
  codes (``unreadable``; ``aborted`` at drain);
* ``wolf serve --healthz`` and ``wolf serve --status`` answer while the
  daemon is live, and the stats document accounts for every stream;
* SIGTERM drains cleanly: exit status 0 and a sealed ``run_manifest.json``
  whose totals match.

Exit status: 0 on success, 1 with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core.pipeline import run_detection  # noqa: E402
from repro.runtime.tracefile import write_trace  # noqa: E402
from repro.serve import RUN_MANIFEST_NAME, chaos_client, send_trace  # noqa: E402
from repro.workloads.registry import all_benchmarks  # noqa: E402

HEALTHY = 6


def wolf(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    if check and proc.returncode != 0:
        raise RuntimeError(f"wolf {' '.join(args)} failed:\n{proc.stderr}\n{proc.stdout}")
    return proc


def fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", action="store_true", help="keep the run dir")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    sock = os.path.join(tmp, "wolf.sock")
    out = os.path.join(tmp, "run")

    # Fabricate real traces from the benchmark registry.
    benches = all_benchmarks()[:3]
    traces = []
    for b in benches:
        run = run_detection(b.program, b.detect_seed, name=b.name)
        path = os.path.join(tmp, f"{b.name}.wtrc")
        write_trace(run.trace, path, events_per_chunk=32)
        traces.append(path)

    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock, "--out", out],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while True:
            probe = wolf("serve", "--socket", sock, "--healthz", check=False)
            if probe.returncode == 0 and '"status": "ok"' in probe.stdout:
                break
            if daemon.poll() is not None:
                return fail(f"daemon died at startup:\n{daemon.stdout.read()}")
            if time.monotonic() > deadline:
                return fail("daemon did not come up")
            time.sleep(0.1)

        # Eight concurrent producers: six honest, two chaos.
        results: dict = {}

        def honest(i: int) -> None:
            results[f"s{i}"] = send_trace(
                traces[i % len(traces)], f"s{i}", socket_path=sock
            )

        def chaos(mode: str, sid: str) -> None:
            results[sid] = chaos_client(mode, traces[0], sid, socket_path=sock)

        threads = [
            threading.Thread(target=honest, args=(i,)) for i in range(HEALTHY)
        ] + [
            threading.Thread(target=chaos, args=("garbage", "chaos-garbage")),
            threading.Thread(target=chaos, args=("kill", "chaos-kill")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        for i in range(HEALTHY):
            r = results[f"s{i}"]
            if not r.ok:
                return fail(f"healthy stream s{i} failed: {r.error_code} {r.response}")
        garbage = results["chaos-garbage"]
        if not garbage.err or garbage.err["code"] != "unreadable":
            return fail(f"garbage stream misclassified: {garbage.err}")

        # Introspection through the CLI while streams are settled/parked.
        status = json.loads(wolf("serve", "--socket", sock, "--status").stdout)
        if status["streams"]["analyzed"] != HEALTHY:
            return fail(f"status undercounts analyzed: {status['streams']}")
        if status["internal_errors"] != 0:
            return fail(f"internal errors under chaos: {status['internal_errors']}")

        # Graceful drain: SIGTERM -> exit 0 + sealed manifest.
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        if code != 0:
            return fail(f"drain exited {code}:\n{daemon.stdout.read()}")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    manifest_path = os.path.join(out, RUN_MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        return fail("no sealed run_manifest.json after drain")
    with open(manifest_path) as fh:
        doc = json.load(fh)
    rows = {r["stream"]: r for r in doc["streams"]}
    if doc["totals"]["analyzed"] != HEALTHY:
        return fail(f"manifest totals wrong: {doc['totals']}")
    if rows.get("chaos-garbage", {}).get("code") != "unreadable":
        return fail(f"chaos-garbage row wrong: {rows.get('chaos-garbage')}")
    if rows.get("chaos-kill", {}).get("code") != "aborted":
        return fail(f"chaos-kill row wrong: {rows.get('chaos-kill')}")

    # Byte-identity gate: daemon report == `wolf analyze-trace --json`.
    for i in range(HEALTHY):
        trace = traces[i % len(traces)]
        with open(os.path.join(out, "reports", f"s{i}.json"), "rb") as fh:
            daemon_bytes = fh.read()
        batch = wolf("analyze-trace", trace, "--json")
        if daemon_bytes.decode() != batch.stdout:
            return fail(f"report for s{i} diverges from batch analyze-trace")

    print(
        f"serve-smoke OK: {HEALTHY} healthy analyzed byte-identical, "
        f"2 chaos quarantined ({rows['chaos-garbage']['code']}, "
        f"{rows['chaos-kill']['code']}), drained with exit 0"
    )
    if args.keep:
        print(f"run dir kept at {out}")
    else:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
