"""Shared benchmark configuration.

Table/figure benches run each experiment driver once per round (the
drivers are whole pipelines, not microkernels) with reduced replay/run
counts so the full suite stays in CI budget; the regenerated rows are
attached as ``extra_info`` on each benchmark record and printed at the
end of the session.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSettings

#: Reduced-effort settings for benchmark runs (the CLI drivers default to
#: paper-scale numbers).
BENCH_SETTINGS = ExperimentSettings(replay_attempts=3)

#: Replays per deadlock for the Figure 8 bench (paper: 100).
FIG8_RUNS = 10

_collected: list = []


def record_rows(title: str, text: str) -> None:
    _collected.append((title, text))


@pytest.fixture(scope="session", autouse=True)
def print_collected_tables():
    yield
    if _collected:
        print("\n")
        for _title, text in _collected:
            print(text)
            print()


def pedantic(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once per round, 3 rounds: pipeline-scale benchmarking."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)
