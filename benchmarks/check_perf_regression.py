"""CI perf-regression gate: fresh BENCH_core.json vs the committed baseline.

CI runners and developer machines differ in absolute speed, so absolute
wall times are useless to diff.  What *is* machine-independent is each
comparison's internal ratio — the same binary runs both sides, on the
same box, in the same process.  This gate therefore compares ratios:

* ``macro.end_to_end_s.speedup`` — streaming+binary vs batch+JSON,
  end to end;
* ``sharding.speedup`` — sharded+deduplicated cycle enumeration vs the
  monolithic DFS on the loop-heavy macro;
* ``macro.file_bytes.ratio`` — JSON vs binary trace size (fully
  deterministic, so any drop is a real format regression);
* ``prediction.decided_ratio`` — the fraction of registry replay
  candidates the sync-preserving prediction pass certifies or refutes
  without replay (pure trace analysis, fully deterministic — a drop
  means the predictor lost precision);
* ``macro.analyze_speedup.native`` — compiled analysis kernel vs the
  pure-Python streaming analyze on the same ``.wtrc`` macro (bench-core/4);
* ``macro.analyze_speedup.mmap`` — zero-copy mmap reader vs the plain
  pure-Python streaming analyze (bench-core/4).

A fresh ratio more than ``--tolerance`` (default 25%) below the committed
baseline fails the gate.  When a regression is intentional (an accepted
trade-off), refresh the baseline in the same PR —

    python benchmarks/bench_core_micro.py --events 120000 --out BENCH_core.json

— or apply the ``perf-baseline-reset`` label to the PR, which skips this
gate (see .github/workflows/ci.yml).

Usage::

    python benchmarks/check_perf_regression.py FRESH.json \
        [--baseline BENCH_core.json] [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

#: (label, path into the document) for every gated ratio.
GATED_RATIOS = [
    ("end-to-end streaming speedup", ("macro", "end_to_end_s", "speedup")),
    ("sharded enumeration speedup", ("sharding", "speedup")),
    ("trace file size ratio", ("macro", "file_bytes", "ratio")),
    ("prediction decided ratio", ("prediction", "decided_ratio")),
    ("native analyze speedup", ("macro", "analyze_speedup", "native")),
    ("mmap analyze speedup", ("macro", "analyze_speedup", "mmap")),
    # bench-serve/1 (BENCH_serve.json baselines, `--baseline BENCH_serve.json`).
    # Ratios absent from a bench-core baseline simply SKIP, so the two
    # documents share one gate script.
    ("fleet 2-worker ingestion speedup", ("scaling", "speedup_2v1")),
    ("fleet 4-worker ingestion speedup", ("scaling", "speedup_4v1")),
    ("fleet rollup identity", ("identity", "rollup_identical")),
]


def _lookup(doc: dict, path: tuple) -> Optional[float]:
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    # bench-core/4 records null for stages that could not run (e.g. the
    # native kernel without a C compiler): treat like a missing key.
    return None if node is None else float(node)


def check(fresh: dict, baseline: dict, tolerance: float) -> int:
    failures = 0
    for label, path in GATED_RATIOS:
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        if base is None:
            # Baseline predates this metric (older schema): nothing to
            # regress against; the refreshed baseline will carry it.
            print(f"SKIP  {label}: not in baseline ({'.'.join(path)})")
            continue
        if new is None:
            print(f"FAIL  {label}: missing from fresh results")
            failures += 1
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok  " if new >= floor else "FAIL"
        print(
            f"{verdict}  {label}: fresh {new:.2f}x vs baseline {base:.2f}x "
            f"(floor {floor:.2f}x at {tolerance:.0%} tolerance)"
        )
        if new < floor:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument(
        "--baseline",
        default="BENCH_core.json",
        help="committed baseline to diff against (default: BENCH_core.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below the baseline ratio (default 0.25)",
    )
    args = parser.parse_args(argv)

    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = check(fresh, baseline, args.tolerance)
    if failures:
        print(
            f"\n{failures} perf ratio(s) regressed >25% vs {args.baseline}. "
            "If intentional, refresh the baseline in this PR or apply the "
            "'perf-baseline-reset' label.",
            file=sys.stderr,
        )
        return 1
    print("\nno perf regressions vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
