"""Scalability benchmarks: analysis stages on graded synthetic workloads
(DESIGN.md §6; backs the paper's "scalable algorithm" claim), plus the
workers sweep measuring the process-pool fan-out of the whole pipeline
(`WolfConfig.workers`) against the serial baseline."""

from __future__ import annotations

import pytest

from repro.core.detector import ExtendedDetector
from repro.core.generator import Generator
from repro.core.pipeline import Wolf, WolfConfig, run_detection
from repro.core.pruner import Pruner
from repro.experiments.scaling import make_scaled_workload

POINTS = [(2, 40), (4, 80), (8, 160)]

#: Workers sweep: multi-seed workload (8 seeds — each an independent
#: detection run) on a graded program sized so analysis dominates the
#: worker-pool startup cost.
SWEEP_WORKLOAD = (4, 6, 40)  # threads, locks, iters
SWEEP_SEEDS = list(range(8))
SWEEP_WORKERS = [1, 2, 4]

_sweep_serial_wall: dict = {}


@pytest.fixture(scope="module")
def detections():
    out = {}
    for n_threads, iters in POINTS:
        program = make_scaled_workload(n_threads, 6, iters)
        run = run_detection(program, 0, tries=20, max_steps=500_000)
        out[(n_threads, iters)] = (program, run.trace)
    return out


@pytest.mark.parametrize("point", POINTS, ids=[f"{t}t-{i}i" for t, i in POINTS])
def test_detector_scaling(benchmark, detections, point):
    _, trace = detections[point]
    detector = ExtendedDetector(max_length=3)
    detection = benchmark(detector.analyze, trace)
    benchmark.extra_info.update(
        events=len(trace), entries=len(detection.relation), cycles=len(detection.cycles)
    )


@pytest.mark.parametrize("point", POINTS, ids=[f"{t}t-{i}i" for t, i in POINTS])
def test_gs_scaling(benchmark, detections, point):
    _, trace = detections[point]
    detection = ExtendedDetector(max_length=3).analyze(trace)
    survivors = Pruner(detection.vclocks).prune(detection.cycles).survivors

    def run():
        return Generator(detection.relation).run(survivors)

    gen = benchmark(run)
    sizes = [d.gs.num_vertices() for d in gen.decisions]
    benchmark.extra_info.update(
        graphs=len(gen.decisions),
        avg_vertices=round(sum(sizes) / len(sizes), 1) if sizes else 0,
    )


@pytest.mark.parametrize("workers", SWEEP_WORKERS, ids=[f"w{w}" for w in SWEEP_WORKERS])
def test_workers_sweep(benchmark, workers):
    """Full pipeline, 8 detection seeds, fanned out over `workers`
    processes.  Reports wall time per worker count plus the speedup over
    the serial (`workers=1`) run of the same sweep; cycle classifications
    are asserted identical to serial regardless of worker count."""
    program = make_scaled_workload(*SWEEP_WORKLOAD)

    def run():
        cfg = WolfConfig(
            detect_seeds=SWEEP_SEEDS,
            replay_attempts=2,
            max_cycle_length=3,
            max_steps=500_000,
            workers=workers,
        )
        return Wolf(config=cfg).analyze(program, name="workers-sweep")

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = report.timings["wall"]
    if workers == 1:
        _sweep_serial_wall["wall"] = wall
        _sweep_serial_wall["classes"] = [
            c.classification for c in report.cycle_reports
        ]
    else:
        serial_classes = _sweep_serial_wall.get("classes")
        if serial_classes is not None:  # w1 ran earlier in this session
            assert [
                c.classification for c in report.cycle_reports
            ] == serial_classes, (
                "parallel run must classify cycles identically to serial"
            )
    serial_wall = _sweep_serial_wall.get("wall")
    benchmark.extra_info.update(
        workers=report.workers,
        seeds=len(SWEEP_SEEDS),
        cycles=report.n_cycles,
        wall_s=round(wall, 3),
        aggregate_s=round(report.aggregate_s, 3),
        overlap=round(report.speedup, 2) if report.speedup else None,
        speedup_vs_serial=(
            round(serial_wall / wall, 2) if serial_wall else None
        ),
    )
