"""Scalability benchmarks: analysis stages on graded synthetic workloads
(DESIGN.md §6; backs the paper's "scalable algorithm" claim)."""

from __future__ import annotations

import pytest

from repro.core.detector import ExtendedDetector
from repro.core.generator import Generator
from repro.core.pipeline import run_detection
from repro.core.pruner import Pruner
from repro.experiments.scaling import make_scaled_workload

POINTS = [(2, 40), (4, 80), (8, 160)]


@pytest.fixture(scope="module")
def detections():
    out = {}
    for n_threads, iters in POINTS:
        program = make_scaled_workload(n_threads, 6, iters)
        run = run_detection(program, 0, tries=20, max_steps=500_000)
        out[(n_threads, iters)] = (program, run.trace)
    return out


@pytest.mark.parametrize("point", POINTS, ids=[f"{t}t-{i}i" for t, i in POINTS])
def test_detector_scaling(benchmark, detections, point):
    _, trace = detections[point]
    detector = ExtendedDetector(max_length=3)
    detection = benchmark(detector.analyze, trace)
    benchmark.extra_info.update(
        events=len(trace), entries=len(detection.relation), cycles=len(detection.cycles)
    )


@pytest.mark.parametrize("point", POINTS, ids=[f"{t}t-{i}i" for t, i in POINTS])
def test_gs_scaling(benchmark, detections, point):
    _, trace = detections[point]
    detection = ExtendedDetector(max_length=3).analyze(trace)
    survivors = Pruner(detection.vclocks).prune(detection.cycles).survivors

    def run():
        return Generator(detection.relation).run(survivors)

    gen = benchmark(run)
    sizes = [d.gs.num_vertices() for d in gen.decisions]
    benchmark.extra_info.update(
        graphs=len(gen.decisions),
        avg_vertices=round(sum(sizes) / len(sizes), 1) if sizes else 0,
    )
