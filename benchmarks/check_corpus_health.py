"""CI corpus-health gate: the committed mini-corpus vs CORPUS_health.json.

The perf gate (check_perf_regression.py) protects speed ratios; this gate
protects *findings*.  It re-runs the full offline analysis — streaming
detection, Pruner, Generator, sync-preserving prediction — over every
``.wtrc`` trace committed under ``corpus/`` and fails when, relative to
the committed baseline:

* any **defect key is lost** (corpus-wide, or from the specific trace
  that used to witness it), or
* any trace's **replay-candidate count regresses** (cycles the Generator
  certifies replayable from the trace alone — the offline stand-in for
  replay success, since committed traces carry no live program), or
* any trace key the baseline **certified is demoted** (the prediction
  pass stopped proving the cycle feasible — a lost proof gates exactly
  like a lost defect), or
* the corpus fails **validation** (torn/duplicate/stray/manifest-divergent
  traces) — a corrupted corpus must not silently pass.

When a loss is intentional (e.g. a soundness fix removed a false cycle),
refresh the baseline in the same PR —

    PYTHONPATH=src python benchmarks/check_corpus_health.py --write-baseline

— or apply the ``corpus-baseline-reset`` label to the PR, which skips the
baseline diff (validation still runs; see .github/workflows/ci.yml).

Usage::

    python benchmarks/check_corpus_health.py [--corpus corpus]
        [--baseline CORPUS_health.json] [--out CORPUS_health.fresh.json]
        [--write-baseline] [--validate-only]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.corpus import (
    CorpusManifest,
    compare_health,
    compute_health,
    load_health,
    save_health,
    validate_corpus,
)
from repro.corpus.manifest import MANIFEST_NAME


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--corpus", default="corpus", help="corpus directory (default: corpus)"
    )
    parser.add_argument(
        "--baseline",
        default="CORPUS_health.json",
        help="committed health baseline (default: CORPUS_health.json)",
    )
    parser.add_argument(
        "--out",
        default="CORPUS_health.fresh.json",
        help="where to write the fresh health document "
        "(default: CORPUS_health.fresh.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite --baseline with the fresh health document",
    )
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help="run corpus validation only; skip the baseline diff",
    )
    args = parser.parse_args(argv)

    problems = validate_corpus(args.corpus, deep=True)
    for p in problems:
        print(f"FAIL  validate: {p}")
    if problems:
        print(
            f"\n{len(problems)} validation problem(s) in {args.corpus}",
            file=sys.stderr,
        )
        return 1
    print(f"ok    corpus {args.corpus} validates (deep)")
    if args.validate_only:
        return 0

    manifest = CorpusManifest.load(os.path.join(args.corpus, MANIFEST_NAME))
    fresh = compute_health(args.corpus, manifest)
    save_health(fresh, args.out)
    totals = fresh["totals"]
    print(
        f"ok    re-analyzed {totals['traces']} trace(s): "
        f"{totals['defect_keys']} defect key(s), {totals['cycles']} cycle(s), "
        f"{totals['replay_candidates']} replay candidate(s)"
    )
    pred = totals["predicted"]
    ratio = totals["decided_ratio"]
    print(
        f"ok    prediction: {pred['certified']} certified, "
        f"{pred['refuted']} refuted, {pred['undecided']} undecided"
        + (
            f" ({100.0 * ratio:.1f}% decided without replay)"
            if ratio is not None
            else ""
        )
    )

    if args.write_baseline:
        save_health(fresh, args.baseline)
        print(f"wrote baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(
            f"FAIL  missing baseline {args.baseline}; run with "
            "--write-baseline and commit it",
            file=sys.stderr,
        )
        return 1

    failures = compare_health(fresh, load_health(args.baseline))
    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(
            f"\n{len(failures)} corpus defect(s) lost/regressed vs "
            f"{args.baseline}. If intentional, refresh the baseline in this "
            "PR (--write-baseline) or apply the 'corpus-baseline-reset' "
            "label.",
            file=sys.stderr,
        )
        return 1
    print("\nno lost defects vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
