"""Regenerate paper Figure 8 (hit rates of reproducing each deadlock).

The paper uses 100 replays per potential deadlock; the bench uses
``FIG8_RUNS`` to stay in budget — the CLI (``wolf fig8``) runs the
paper-scale version.  Deadlock-bearing benchmarks only (cache4j has no
bars in the paper's figure either).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SETTINGS, FIG8_RUNS, pedantic, record_rows
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.workloads.registry import BENCHMARKS

NAMES = [b.name for b in BENCHMARKS if b.name != "cache4j"]
_rows = {}


@pytest.mark.parametrize("name", NAMES)
def test_fig8_hit_rate(benchmark, name):
    def run():
        (row,) = run_fig8([name], BENCH_SETTINGS, n_runs=FIG8_RUNS)
        return row

    row = pedantic(benchmark, run)
    _rows[name] = row
    benchmark.extra_info.update(
        wolf_hit_rate=round(row.wolf, 3), df_hit_rate=round(row.df, 3), runs=FIG8_RUNS
    )
    # The paper's headline: WOLF's hit rate dominates DF's on every
    # benchmark.  At FIG8_RUNS replays the estimator has ~1/FIG8_RUNS
    # granularity, so allow one-miss sampling noise; the paper-scale
    # driver (`wolf fig8 --runs 100`) shows strict dominance.
    assert row.wolf >= row.df - 1.5 / FIG8_RUNS
    assert row.wolf > 0


def test_render_fig8():
    ordered = [n for n in NAMES if n in _rows]
    if len(ordered) == len(NAMES):
        record_rows("fig8", render_fig8([_rows[n] for n in ordered]))
