"""Benchmark of the MagicFuzzer-style relation reduction (DESIGN.md §6):
cycle enumeration cost with and without pre-reduction on a skewed trace
where most acquisitions cannot participate in cycles."""

from __future__ import annotations

import pytest

from repro.core.detector import find_cycles
from repro.core.lockdep import build_lockdep
from repro.core.reduction import reduce_relation
from repro.runtime.sim.runtime import run_program
from repro.runtime.sim.strategy import RandomStrategy


def skewed_program(n_noise_threads: int = 6, iters: int = 40):
    """Two threads with a real AB/BA inversion plus many threads doing
    single-lock (cycle-incapable) work — the shape MagicFuzzer targets."""

    def program(rt):
        a = rt.new_lock(name="A")
        b = rt.new_lock(name="B")
        noise = [rt.new_lock(name=f"N{i}", site="skew:locks") for i in range(n_noise_threads)]

        def t1():
            with a.at("sk:a1"):
                with b.at("sk:b1"):
                    pass

        def t2():
            with b.at("sk:b2"):
                with a.at("sk:a2"):
                    pass

        def noisy(k):
            for _ in range(iters):
                with noise[k].at(f"sk:n{k}"):
                    pass

        handles = [rt.spawn(t1, site="sk:s1"), rt.spawn(t2, site="sk:s2")]
        handles += [
            rt.spawn(lambda k=i: noisy(k), site="sk:sn") for i in range(n_noise_threads)
        ]
        for h in handles:
            h.join()

    return program


@pytest.fixture(scope="module")
def skewed_relation():
    result = run_program(
        skewed_program(), RandomStrategy(1, stickiness=0.9), max_steps=100_000
    )
    result.raise_errors()
    return build_lockdep(result.trace)


def test_reduction_pass(benchmark, skewed_relation):
    reduced, removed = benchmark(reduce_relation, skewed_relation)
    benchmark.extra_info.update(entries=len(skewed_relation), removed=removed)
    assert removed > 0.8 * len(skewed_relation)


def test_cycles_without_reduction(benchmark, skewed_relation):
    cycles, _ = benchmark(find_cycles, skewed_relation, max_length=3)
    benchmark.extra_info["cycles"] = len(cycles)
    assert len(cycles) == 1


def test_cycles_with_reduction(benchmark, skewed_relation):
    def run():
        reduced, _ = reduce_relation(skewed_relation)
        return find_cycles(reduced, max_length=3)

    cycles, _ = benchmark(run)
    benchmark.extra_info["cycles"] = len(cycles)
    assert len(cycles) == 1
