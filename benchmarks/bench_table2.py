"""Regenerate paper Table 2 (the per-cycle comparison)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SETTINGS, pedantic, record_rows
from repro.experiments.table2 import render_table2, run_table2
from repro.workloads.registry import BENCHMARKS

_rows = {}


@pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
def test_table2_row(benchmark, name):
    def run():
        (row,) = run_table2([name], BENCH_SETTINGS)
        return row

    row = pedantic(benchmark, run)
    _rows[name] = row
    benchmark.extra_info.update(
        cycles=row.cycles,
        fp_wolf=row.fp_wolf,
        tp_wolf=row.tp_wolf,
        tp_df=row.tp_df,
        unknown_wolf=row.unknown_wolf,
        unknown_df=row.unknown_df,
    )
    assert row.tp_wolf >= row.tp_df
    if name in ("HashMap", "TreeMap", "WeakHashMap", "LinkedHashMap", "IdentityHashMap"):
        # Paper Table 2 map rows: 4 cycles, 1 FP, 3 TP for WOLF.
        assert (row.cycles, row.fp_wolf, row.tp_wolf) == (4, 1, 3)


def test_render_full_table2():
    ordered = [n.name for n in BENCHMARKS if n.name in _rows]
    if len(ordered) == len(BENCHMARKS):
        record_rows("table2", render_table2([_rows[n] for n in ordered]))
