"""Regenerate paper Table 1 (defects by unique source locations).

One benchmark per paper row; the timed unit is the full WOLF+DF pipeline
for that benchmark.  Row contents land in ``extra_info`` and the complete
table prints at session end (run with ``-s`` to see it inline).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SETTINGS, pedantic, record_rows
from repro.experiments.table1 import render_table1, run_table1
from repro.workloads.registry import BENCHMARKS

_rows = {}


@pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
def test_table1_row(benchmark, name):
    def run():
        (row,) = run_table1([name], BENCH_SETTINGS, measure_slowdown=True)
        return row

    row = pedantic(benchmark, run)
    _rows[name] = row
    benchmark.extra_info.update(
        detected=row.detected,
        fp_pruner=row.fp_pruner,
        fp_generator=row.fp_generator,
        tp_wolf=row.tp_wolf,
        tp_df=row.tp_df,
        unknown_wolf=row.unknown_wolf,
        unknown_df=row.unknown_df,
        slowdown=round(row.slowdown, 2),
    )
    # Paper-shape checks: WOLF never confirms fewer defects than DF, and
    # cache4j stays clean.
    assert row.tp_wolf >= row.tp_df
    if name == "cache4j":
        assert row.detected == 0


def test_render_full_table1():
    ordered = [n.name for n in BENCHMARKS if n.name in _rows]
    if len(ordered) == len(BENCHMARKS):
        record_rows("table1", render_table1([_rows[n] for n in ordered]))
