"""Regenerate paper Figure 10 (WOLF's detection/reproduction overheads
normalized to DeadlockFuzzer)."""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import BENCH_SETTINGS, pedantic, record_rows
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.workloads.registry import BENCHMARKS

_rows = {}


@pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
def test_fig10_overheads(benchmark, name):
    def run():
        (row,) = run_fig10([name], BENCH_SETTINGS, replays_per_cycle=2)
        return row

    row = pedantic(benchmark, run)
    _rows[name] = row
    benchmark.extra_info.update(
        detection_ratio=round(row.detection_ratio, 2),
        reproduction_ratio=(
            round(row.reproduction_ratio, 2)
            if not math.isnan(row.reproduction_ratio)
            else None
        ),
    )
    # Paper shape: WOLF's detection adds modest *absolute* overhead over
    # DF (the pruner+generator work).  On this substrate the executions
    # are milliseconds long, so the per-cycle Gs cost inflates the ratio
    # on the cycle-heavy list benchmarks (see EXPERIMENTS.md's Figure 10
    # caveat) — bound the ratio loosely rather than at the paper's ~1.1x.
    assert row.detection_ratio < 25


def test_render_fig10():
    ordered = [b.name for b in BENCHMARKS if b.name in _rows]
    if len(ordered) == len(BENCHMARKS):
        record_rows("fig10", render_fig10([_rows[n] for n in ordered]))
